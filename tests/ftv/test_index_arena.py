"""Sealed feature-index segments: round-trip, filter identity, staleness.

The ``*.ftv.arena`` segment is the compiled form of a built FTV index.
These tests pin (a) the seal → attach round-trip against the live trie and
fingerprint structures it replaces — same postings, same filter answers on
real workloads; (b) the attach handshake on the method side: family/params
mismatches and a stale dataset hash must be *detected* (warn + rebuild),
never silently served.
"""

from __future__ import annotations

import warnings

import pytest

from repro.exceptions import CacheError
from repro.ftv.base import FTVMethod
from repro.ftv.ctindex import CTIndex
from repro.ftv.ggsx import GraphGrepSX
from repro.ftv.grapes import Grapes
from repro.ftv.index_arena import FeatureIndexArena, dataset_content_hash
from repro.graphs.generators import aids_like
from repro.graphs.graph import Graph
from repro.workloads import generate_type_a


@pytest.fixture(scope="module")
def dataset():
    return aids_like(scale=0.05, seed=1)


@pytest.fixture(scope="module")
def queries(dataset):
    return generate_type_a(dataset, "ZZ", 15, seed=7, query_sizes=(3, 5, 8))


class TestSealAttachRoundTrip:
    @pytest.mark.parametrize("method_cls", [GraphGrepSX, Grapes, CTIndex])
    def test_candidates_identical_after_attach(
        self, tmp_path, dataset, queries, method_cls
    ):
        baseline = method_cls(dataset)
        expected = [baseline.candidates(query) for query in queries]

        sealer = method_cls(dataset)
        path = tmp_path / "index.ftv.arena"
        sealer.seal_feature_index(path)

        attacher = method_cls(dataset)
        assert attacher.attach_feature_index(path) is True
        assert attacher.feature_index is not None
        for query, answer in zip(queries, expected, strict=True):
            assert attacher.candidates(query) == answer

    def test_postings_match_trie(self, tmp_path, dataset):
        method = GraphGrepSX(dataset)
        path = tmp_path / "index.ftv.arena"
        method.seal_feature_index(path)
        arena = FeatureIndexArena.attach(path)
        trie = method._trie
        for feature, counts in trie.iter_features():
            assert arena.posting(feature) == dict(counts)
        assert arena.feature_count == sum(1 for _ in trie.iter_features())

    def test_empty_query_features_answer_owners(self, tmp_path, dataset):
        method = GraphGrepSX(dataset)
        path = tmp_path / "index.ftv.arena"
        method.seal_feature_index(path)
        arena = FeatureIndexArena.attach(path)
        assert arena.filter_counted({}) == arena.owners

    def test_missing_feature_answers_empty(self, tmp_path, dataset):
        method = GraphGrepSX(dataset)
        path = tmp_path / "index.ftv.arena"
        method.seal_feature_index(path)
        arena = FeatureIndexArena.attach(path)
        assert arena.filter_counted({("no-such-label",): 1}) == frozenset()

    def test_ctindex_fingerprints_round_trip(self, tmp_path, dataset):
        method = CTIndex(dataset)
        path = tmp_path / "index.ftv.arena"
        method.seal_feature_index(path)
        attacher = CTIndex(dataset)
        assert attacher.attach_feature_index(path) is True
        for graph_id in sorted(dataset.graph_ids)[:20]:
            assert (
                attacher.fingerprint_of(graph_id).bits
                == method.fingerprint_of(graph_id).bits
            )

    def test_sealed_bytes_deterministic(self, tmp_path, dataset):
        first = tmp_path / "a.ftv.arena"
        second = tmp_path / "b.ftv.arena"
        GraphGrepSX(dataset).seal_feature_index(first)
        GraphGrepSX(dataset).seal_feature_index(second)
        assert first.read_bytes() == second.read_bytes()


class TestAttachHandshake:
    def test_not_a_segment_file_warns_and_declines(self, tmp_path, dataset):
        path = tmp_path / "junk.ftv.arena"
        path.write_bytes(b"not an index segment at all")
        method = GraphGrepSX(dataset)
        with pytest.warns(UserWarning, match="attach failed"):
            assert method.attach_feature_index(path) is False
        assert method.feature_index is None

    def test_params_mismatch_declines(self, tmp_path, dataset):
        GraphGrepSX(dataset, max_path_length=2).seal_feature_index(
            tmp_path / "short.ftv.arena"
        )
        method = GraphGrepSX(dataset, max_path_length=4)
        with pytest.warns(UserWarning):
            assert method.attach_feature_index(tmp_path / "short.ftv.arena") is False

    def test_family_mismatch_declines(self, tmp_path, dataset):
        CTIndex(dataset).seal_feature_index(tmp_path / "ct.ftv.arena")
        method = GraphGrepSX(dataset)
        with pytest.warns(UserWarning):
            assert method.attach_feature_index(tmp_path / "ct.ftv.arena") is False

    def test_stale_dataset_hash_declines(self, tmp_path, dataset):
        path = tmp_path / "index.ftv.arena"
        GraphGrepSX(dataset).seal_feature_index(path)
        other = aids_like(scale=0.05, seed=2)
        method = GraphGrepSX(other)
        with pytest.warns(UserWarning, match="stale"):
            assert method.attach_feature_index(path) is False
        # The method still answers (from its own built index).
        assert method.candidates(other[0]) is not None

    def test_seal_unsupported_raises(self, dataset, tmp_path):
        class Bare(FTVMethod):
            name = "bare"

            def _build_index(self):
                pass

            def _filter(self, query: Graph) -> frozenset:
                return frozenset()

            def index_size_bytes(self) -> int:
                return 0

        with pytest.raises(CacheError, match="does not support sealed"):
            Bare(dataset).seal_feature_index(tmp_path / "bare.ftv.arena")


class TestDatasetContentHash:
    def test_hash_is_content_addressed(self, dataset):
        assert dataset_content_hash(dataset) == dataset_content_hash(dataset)
        assert dataset_content_hash(dataset) != dataset_content_hash(
            aids_like(scale=0.05, seed=2)
        )

    def test_packed_and_decoded_datasets_hash_identically(self, tmp_path, dataset):
        from repro.core.packed_dataset import PackedGraphDataset, seal_dataset

        path = seal_dataset(dataset, tmp_path / "dataset.arena")
        packed = PackedGraphDataset.attach(path)
        try:
            assert dataset_content_hash(packed) == dataset_content_hash(dataset)
        finally:
            packed.close()


def test_no_warnings_on_clean_attach(tmp_path, dataset):
    path = tmp_path / "index.ftv.arena"
    GraphGrepSX(dataset).seal_feature_index(path)
    method = GraphGrepSX(dataset)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert method.attach_feature_index(path) is True
