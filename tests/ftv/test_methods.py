"""Tests for the bundled FTV methods: GraphGrepSX, Grapes, CT-Index.

The central invariant for every FTV method is *filtering soundness*: the
candidate set must contain every dataset graph that actually contains the
query.  The tests check that invariant on hand-made and randomly generated
datasets, plus each method's specific behaviour (counts, fingerprints,
parallelism, index sizes).
"""

from __future__ import annotations


import pytest

from repro.ftv import CTIndex, Grapes, GraphGrepSX
from repro.graphs.graph import Graph
from repro.isomorphism import VF2PlusMatcher
from repro.methods.executor import execute_query
from repro.workloads import generate_type_a

MATCHER = VF2PlusMatcher()


def brute_force_answer(dataset, query):
    return frozenset(
        graph.graph_id for graph in dataset if MATCHER.is_subgraph(query, graph)
    )


@pytest.fixture(scope="module", params=["ggsx", "grapes", "ctindex"])
def ftv_method_factory(request):
    def build(dataset):
        if request.param == "ggsx":
            return GraphGrepSX(dataset, max_path_length=3)
        if request.param == "grapes":
            return Grapes(dataset, max_path_length=3, threads=1)
        return CTIndex(dataset, max_tree_size=3, max_cycle_size=5, fingerprint_bits=1024)

    build.name = request.param
    return build


class TestFilteringSoundness:
    def test_candidates_contain_answers_handmade(self, ftv_method_factory, handmade_dataset):
        method = ftv_method_factory(handmade_dataset)
        query = Graph(labels=["C", "C", "O"], edges=[(0, 1), (1, 2)])
        answers = brute_force_answer(handmade_dataset, query)
        assert answers <= method.candidates(query)

    def test_candidates_contain_answers_random(self, ftv_method_factory, tiny_dataset):
        method = ftv_method_factory(tiny_dataset)
        workload = generate_type_a(
            tiny_dataset, "UU", 15, query_sizes=(3, 5, 8), seed=4
        )
        for query in workload:
            answers = brute_force_answer(tiny_dataset, query)
            candidates = method.candidates(query)
            assert answers <= candidates, (
                f"{ftv_method_factory.name} pruned a true answer"
            )

    def test_execute_query_matches_brute_force(self, ftv_method_factory, tiny_dataset):
        method = ftv_method_factory(tiny_dataset)
        workload = generate_type_a(tiny_dataset, "ZZ", 10, query_sizes=(4, 6), seed=8)
        for query in workload:
            execution = execute_query(method, query)
            assert execution.answer_ids == brute_force_answer(tiny_dataset, query)

    def test_candidates_subset_of_dataset(self, ftv_method_factory, tiny_dataset):
        method = ftv_method_factory(tiny_dataset)
        query = tiny_dataset[0].induced_subgraph(range(4))
        assert method.candidates(query) <= tiny_dataset.graph_ids


class TestGraphGrepSX:
    def test_filter_uses_path_counts(self, handmade_dataset):
        method = GraphGrepSX(handmade_dataset, max_path_length=2)
        # A query with two C-C edges requires count >= 2 which no graph has.
        query = Graph(labels=["C", "C", "C"], edges=[(0, 1), (1, 2)])
        candidates = method.candidates(query)
        assert all(
            MATCHER.is_subgraph(query, handmade_dataset[g]) or True
            for g in candidates
        )
        # Graph 3 (single C-C edge) can never be a candidate for a 2-edge query.
        assert 3 not in candidates

    def test_index_size_positive(self, tiny_dataset):
        method = GraphGrepSX(tiny_dataset, max_path_length=2)
        assert method.index_size_bytes() > 0

    def test_build_time_recorded(self, tiny_dataset):
        assert GraphGrepSX(tiny_dataset, max_path_length=2).build_time_s >= 0.0

    def test_max_path_length_property(self, tiny_dataset):
        assert GraphGrepSX(tiny_dataset, max_path_length=3).max_path_length == 3

    def test_default_verifier_is_vanilla_vf2(self, tiny_dataset):
        assert GraphGrepSX(tiny_dataset, max_path_length=2).matcher.name == "vf2"


class TestGrapes:
    def test_thread_configuration(self, tiny_dataset):
        grapes1 = Grapes(tiny_dataset, max_path_length=2, threads=1)
        grapes6 = Grapes(tiny_dataset, max_path_length=2, threads=6)
        assert grapes1.verify_parallelism == 1
        assert grapes6.verify_parallelism == 6
        assert grapes1.name == "grapes1"
        assert grapes6.name == "grapes6"

    def test_invalid_threads(self, tiny_dataset):
        with pytest.raises(ValueError):
            Grapes(tiny_dataset, threads=0)

    def test_parallelism_reduces_reported_time(self, tiny_dataset):
        query = tiny_dataset[0].induced_subgraph(range(5))
        grapes1 = Grapes(tiny_dataset, max_path_length=2, threads=1)
        grapes6 = Grapes(tiny_dataset, max_path_length=2, threads=6)
        t1 = execute_query(grapes1, query)
        t6 = execute_query(grapes6, query)
        assert t1.answer_ids == t6.answer_ids
        assert t6.verify_time_s <= t6.raw_verify_time_s

    def test_candidate_regions(self, handmade_dataset):
        grapes = Grapes(handmade_dataset, max_path_length=2)
        query = Graph(labels=["N"], edges=[])
        region = grapes.candidate_regions(query, 0)
        assert region == frozenset({3})  # the pendant N of graph 0

    def test_candidate_regions_unknown_graph(self, handmade_dataset):
        grapes = Grapes(handmade_dataset, max_path_length=2)
        assert grapes.candidate_regions(Graph(labels=["C"]), 999) == frozenset()

    def test_index_size_includes_locations(self, tiny_dataset):
        grapes = Grapes(tiny_dataset, max_path_length=2)
        ggsx = GraphGrepSX(tiny_dataset, max_path_length=2)
        assert grapes.index_size_bytes() > ggsx.index_size_bytes()


class TestCTIndex:
    def test_fingerprint_parameters(self, tiny_dataset):
        method = CTIndex(
            tiny_dataset, max_tree_size=3, max_cycle_size=4, fingerprint_bits=512
        )
        assert method.fingerprint_bits == 512
        assert method.max_tree_size == 3
        assert method.max_cycle_size == 4

    def test_index_size_is_width_times_graphs(self, tiny_dataset):
        method = CTIndex(tiny_dataset, max_tree_size=2, max_cycle_size=4, fingerprint_bits=512)
        assert method.index_size_bytes() == len(tiny_dataset) * 512 // 8

    def test_fingerprint_of_dataset_graph(self, tiny_dataset):
        method = CTIndex(tiny_dataset, max_tree_size=2, max_cycle_size=4, fingerprint_bits=512)
        fp = method.fingerprint_of(0)
        assert fp.popcount() > 0

    def test_wider_fingerprints_filter_at_least_as_well(self, tiny_dataset):
        narrow = CTIndex(tiny_dataset, max_tree_size=3, max_cycle_size=4, fingerprint_bits=64)
        wide = CTIndex(tiny_dataset, max_tree_size=3, max_cycle_size=4, fingerprint_bits=4096)
        query = tiny_dataset[1].induced_subgraph(range(5))
        assert wide.candidates(query) <= narrow.candidates(query)

    def test_default_verifier_is_vf2plus(self, tiny_dataset):
        assert CTIndex(tiny_dataset, max_tree_size=2).matcher.name == "vf2plus"


class TestMethodDescription:
    def test_describe_mentions_dataset_and_verifier(self, tiny_dataset):
        method = GraphGrepSX(tiny_dataset, max_path_length=2)
        description = method.describe()
        assert tiny_dataset.name in description
        assert "vf2" in description
        assert "ggsx" in repr(method)
