"""Tests for FTV feature extraction (paths, cycles, canonical keys)."""

from __future__ import annotations

import random

import pytest

from repro.ftv.features import (
    canonical_cycle_key,
    canonical_path_key,
    cycle_features,
    extract_label_cycles,
    extract_label_paths,
    path_features,
)
from repro.graphs.generators import random_connected_graph
from repro.graphs.graph import Graph
from repro.isomorphism import VF2PlusMatcher


class TestCanonicalKeys:
    def test_path_key_direction_invariant(self):
        assert canonical_path_key(["C", "O", "N"]) == canonical_path_key(["N", "O", "C"])

    def test_path_key_prefers_smaller(self):
        assert canonical_path_key(["B", "A"]) == ("A", "B")

    def test_cycle_key_rotation_invariant(self):
        a = canonical_cycle_key(["C", "O", "N"])
        b = canonical_cycle_key(["O", "N", "C"])
        assert a == b

    def test_cycle_key_direction_invariant(self):
        assert canonical_cycle_key(["C", "O", "N"]) == canonical_cycle_key(["N", "O", "C"])

    def test_cycle_key_tagged(self):
        assert canonical_cycle_key(["C", "C"])[0] == "cycle"

    def test_cycle_and_path_keys_distinct(self):
        assert canonical_cycle_key(["C", "C", "C"]) != canonical_path_key(["C", "C", "C"])


class TestPathExtraction:
    def test_single_vertex_paths(self, triangle):
        counts = extract_label_paths(triangle, 0)
        assert counts[("C",)] == 2
        assert counts[("O",)] == 1

    def test_edge_paths_counted_once(self):
        g = Graph(labels=["C", "O"], edges=[(0, 1)])
        counts = extract_label_paths(g, 1)
        assert counts[("C", "O")] == 1

    def test_path_graph_counts(self, path_graph):
        counts = extract_label_paths(path_graph, 3)
        assert counts[("C", "C")] == 1
        assert counts[("C", "O")] == 1
        assert counts[("N", "O")] == 1
        assert counts[("C", "C", "O")] == 1
        assert counts[("C", "C", "O", "N")] == 1

    def test_triangle_length2_paths(self, triangle):
        counts = extract_label_paths(triangle, 2)
        # Paths of 2 edges in a triangle: one per middle vertex = 3.
        two_edge = {k: v for k, v in counts.items() if len(k) == 3}
        assert sum(two_edge.values()) == 3

    def test_negative_length_empty(self, triangle):
        assert not extract_label_paths(triangle, -1)

    def test_max_length_zero_only_vertices(self, path_graph):
        counts = extract_label_paths(path_graph, 0)
        assert all(len(key) == 1 for key in counts)

    def test_alias(self, triangle):
        assert path_features(triangle, 2) == extract_label_paths(triangle, 2)


class TestCycleExtraction:
    def test_triangle_has_one_cycle(self, triangle):
        counts = extract_label_cycles(triangle, 3)
        assert sum(counts.values()) == 1

    def test_square_cycle_counted_once(self):
        square = Graph(labels=["C", "O", "C", "O"], edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
        counts = extract_label_cycles(square, 4)
        assert sum(counts.values()) == 1

    def test_max_size_respected(self):
        square = Graph(labels=["C"] * 4, edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
        assert sum(extract_label_cycles(square, 3).values()) == 0

    def test_no_cycles_in_tree(self, path_graph):
        assert not extract_label_cycles(path_graph, 6)

    def test_two_triangles_counted(self, house_graph):
        # The "house" has exactly one triangle (roof) and one 4-cycle (walls)
        # plus the 5-cycle around the outside.
        triangles = {
            key: value
            for key, value in extract_label_cycles(house_graph, 3).items()
        }
        assert sum(triangles.values()) == 1

    def test_k4_has_seven_cycles(self):
        k4 = Graph(
            labels=["C"] * 4,
            edges=[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
        )
        # K4 contains 4 triangles and 3 four-cycles.
        assert sum(extract_label_cycles(k4, 3).values()) == 4
        assert sum(extract_label_cycles(k4, 4).values()) == 7

    def test_alias(self, triangle):
        assert cycle_features(triangle, 3) == extract_label_cycles(triangle, 3)


class TestFeatureMonotonicity:
    """If pattern ⊆ target then target's feature counts dominate the pattern's.

    This is the property FTV filtering soundness rests on.
    """

    @pytest.mark.parametrize("seed", range(10))
    def test_path_counts_monotone_under_containment(self, seed):
        rng = random.Random(seed)
        target = random_connected_graph(12, 2.6, ["C", "O"], rng)
        pattern = target.induced_subgraph(rng.sample(range(12), k=6))
        if not VF2PlusMatcher().is_subgraph(pattern, target):
            pytest.skip("induced subgraph unexpectedly not contained")
        pattern_counts = extract_label_paths(pattern, 3)
        target_counts = extract_label_paths(target, 3)
        for key, count in pattern_counts.items():
            assert target_counts.get(key, 0) >= count

    @pytest.mark.parametrize("seed", range(5))
    def test_cycle_counts_monotone_under_containment(self, seed):
        rng = random.Random(seed)
        target = random_connected_graph(10, 3.0, ["C", "O"], rng)
        pattern = target.induced_subgraph(rng.sample(range(10), k=6))
        pattern_counts = extract_label_cycles(pattern, 5)
        target_counts = extract_label_cycles(target, 5)
        for key, count in pattern_counts.items():
            assert target_counts.get(key, 0) >= count
