"""Tests for the supergraph-query FTV method."""

from __future__ import annotations

import pytest

from repro.core.cache import GraphCache
from repro.core.config import GraphCacheConfig
from repro.ftv.supergraph import SupergraphFeatureIndex
from repro.graphs.graph import Graph
from repro.isomorphism import VF2PlusMatcher
from repro.methods.executor import execute_query

MATCHER = VF2PlusMatcher()


def contained_graphs(dataset, query):
    """Brute-force supergraph-query answer: dataset graphs inside the query."""
    return frozenset(
        graph.graph_id for graph in dataset if MATCHER.is_subgraph(graph, query)
    )


@pytest.fixture
def method(handmade_dataset):
    return SupergraphFeatureIndex(handmade_dataset, max_path_length=2)


BIG_QUERY = Graph(
    labels=["C", "C", "O", "N", "C", "C"],
    edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5)],
)


class TestFiltering:
    def test_supports_supergraph(self, method):
        assert method.supports_supergraph
        assert method.name == "supergraph-ftv"

    def test_candidates_contain_all_true_answers(self, method, handmade_dataset):
        answers = contained_graphs(handmade_dataset, BIG_QUERY)
        assert answers
        assert answers <= method.candidates(BIG_QUERY)

    def test_larger_graphs_filtered_out(self, method, handmade_dataset):
        # Graph 2 has 7 vertices, more than the 6-vertex query: impossible.
        assert 2 not in method.candidates(BIG_QUERY)

    def test_small_query_few_candidates(self, method):
        tiny = Graph(labels=["C", "C"], edges=[(0, 1)])
        candidates = method.candidates(tiny)
        # Only the single-edge graph (id 3) can be contained in a 1-edge query.
        assert candidates <= frozenset({3})

    def test_index_size_positive(self, method):
        assert method.index_size_bytes() > 0

    def test_max_path_length(self, handmade_dataset):
        assert SupergraphFeatureIndex(handmade_dataset, max_path_length=3).max_path_length == 3


class TestEndToEnd:
    def test_execute_query_supergraph_mode(self, method, handmade_dataset):
        execution = execute_query(method, BIG_QUERY, query_mode="supergraph")
        assert execution.answer_ids == contained_graphs(handmade_dataset, BIG_QUERY)

    def test_graphcache_over_supergraph_ftv(self, method, handmade_dataset):
        cache = GraphCache(
            method,
            GraphCacheConfig(cache_capacity=4, window_size=1, query_mode="supergraph"),
        )
        queries = [BIG_QUERY, handmade_dataset[2], BIG_QUERY, handmade_dataset[0]]
        for query in queries:
            expected = contained_graphs(handmade_dataset, query)
            assert cache.query(query).answer_ids == expected
        # The repeated BIG_QUERY must have produced an exact-match hit.
        assert cache.runtime_statistics.exact_hits >= 1
