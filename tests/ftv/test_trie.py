"""Tests for the counted path trie."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.ftv.trie import PathTrie


@pytest.fixture
def trie():
    t = PathTrie()
    t.insert(("C", "O"), owner_id=1, count=2)
    t.insert(("C", "O"), owner_id=2, count=1)
    t.insert(("C", "N"), owner_id=1, count=1)
    t.insert(("C",), owner_id=3, count=4)
    return t


class TestInsertAndLookup:
    def test_lookup_returns_counts(self, trie):
        assert trie.lookup(("C", "O")) == {1: 2, 2: 1}

    def test_lookup_missing_feature(self, trie):
        assert trie.lookup(("X",)) == {}

    def test_insert_is_additive(self, trie):
        trie.insert(("C", "O"), owner_id=1, count=3)
        assert trie.lookup(("C", "O"))[1] == 5

    def test_insert_zero_count_ignored(self, trie):
        trie.insert(("Z",), owner_id=9, count=0)
        assert trie.lookup(("Z",)) == {}

    def test_owners_tracked(self, trie):
        assert trie.owners == frozenset({1, 2, 3})

    def test_feature_count(self, trie):
        assert trie.feature_count == 4
        assert len(trie) == 4

    def test_insert_features_bulk(self):
        t = PathTrie()
        t.insert_features(Counter({("A",): 2, ("A", "B"): 1}), owner_id=7)
        assert t.lookup(("A",)) == {7: 2}
        assert t.lookup(("A", "B")) == {7: 1}

    def test_owners_with_feature_min_count(self, trie):
        assert trie.owners_with_feature(("C", "O"), min_count=2) == frozenset({1})
        assert trie.owners_with_feature(("C", "O")) == frozenset({1, 2})


class TestFilter:
    def test_filter_requires_all_features(self, trie):
        assert trie.filter({("C", "O"): 1, ("C", "N"): 1}) == frozenset({1})

    def test_filter_respects_counts(self, trie):
        assert trie.filter({("C", "O"): 2}) == frozenset({1})

    def test_filter_empty_query_returns_all_owners(self, trie):
        assert trie.filter({}) == trie.owners

    def test_filter_unknown_feature_empty(self, trie):
        assert trie.filter({("Z", "Z"): 1}) == frozenset()

    def test_filter_single_feature(self, trie):
        assert trie.filter({("C",): 4}) == frozenset({3})


class TestRemoveOwner:
    def test_remove_owner(self, trie):
        trie.remove_owner(1)
        assert trie.lookup(("C", "O")) == {2: 1}
        assert trie.lookup(("C", "N")) == {}
        assert 1 not in trie.owners

    def test_remove_missing_owner_is_noop(self, trie):
        trie.remove_owner(99)
        assert trie.feature_count == 4

    def test_remove_prunes_empty_branches(self, trie):
        trie.remove_owner(3)
        # The single-label branch ("C",) had only owner 3 at its node but the
        # node also roots ("C","O")/("C","N"); lookups must still work.
        assert trie.lookup(("C", "O")) == {1: 2, 2: 1}
        assert trie.lookup(("C",)) == {}

    def test_feature_count_updated_on_removal(self, trie):
        trie.remove_owner(1)
        assert trie.feature_count == 2


class TestIterationAndSize:
    def test_iter_features_round_trip(self, trie):
        found = {feature: counts for feature, counts in trie.iter_features()}
        assert found[("C", "O")] == {1: 2, 2: 1}
        assert len(found) == 3  # three distinct features across four postings

    def test_approximate_size_positive(self, trie):
        assert trie.approximate_size_bytes() > 0

    def test_size_grows_with_content(self):
        small = PathTrie()
        small.insert(("A",), 1)
        big = PathTrie()
        for i in range(50):
            big.insert(("A", str(i)), i)
        assert big.approximate_size_bytes() > small.approximate_size_bytes()
