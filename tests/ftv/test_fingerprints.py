"""Tests for CT-Index style hash fingerprints."""

from __future__ import annotations

import pytest

from repro.ftv.fingerprints import Fingerprint, feature_bit


class TestFeatureBit:
    def test_deterministic(self):
        assert feature_bit(("C", "O"), 4096) == feature_bit(("C", "O"), 4096)

    def test_in_range(self):
        for width in (64, 512, 4096):
            assert 0 <= feature_bit(("C", "O", "N"), width) < width

    def test_different_features_usually_differ(self):
        bits = {feature_bit((str(i),), 4096) for i in range(100)}
        assert len(bits) > 90  # collisions are rare at this load factor


class TestFingerprint:
    def test_add_and_popcount(self):
        fp = Fingerprint(256)
        fp.add_feature(("C",))
        fp.add_feature(("O",))
        assert fp.popcount() in (1, 2)  # collision possible but bounded

    def test_add_features_bulk(self):
        fp = Fingerprint(1024)
        fp.add_features([("C",), ("O",), ("N",)])
        assert fp.popcount() >= 1

    def test_contains_subset(self):
        big = Fingerprint(512)
        small = Fingerprint(512)
        for feature in [("C",), ("O",), ("C", "O")]:
            big.add_feature(feature)
        small.add_feature(("C",))
        assert big.contains(small)
        assert not small.contains(big) or big.bits == small.bits

    def test_contains_requires_same_width(self):
        with pytest.raises(ValueError):
            Fingerprint(128).contains(Fingerprint(256))

    def test_empty_fingerprint_contained_everywhere(self):
        assert Fingerprint(64).contains(Fingerprint(64))

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            Fingerprint(0)

    def test_equality_and_hash(self):
        a = Fingerprint(128)
        b = Fingerprint(128)
        a.add_feature(("C",))
        b.add_feature(("C",))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Fingerprint(128)
        assert a != "not a fingerprint"

    def test_size_bytes(self):
        assert Fingerprint(4096).size_bytes() == 512

    def test_repr_mentions_popcount(self):
        fp = Fingerprint(64)
        fp.add_feature(("C",))
        assert "popcount=1" in repr(fp)
