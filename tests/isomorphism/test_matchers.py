"""Correctness tests shared by every subgraph-isomorphism algorithm.

Each matcher must agree with a networkx reference oracle (monomorphism with
label matching) on random graph pairs, must return valid witness embeddings,
and must honour the non-induced semantics used throughout the paper.
"""

from __future__ import annotations

import pytest

from repro.exceptions import MatchTimeout
from repro.graphs.graph import Graph
from repro.isomorphism import (
    GraphQLMatcher,
    SearchBudget,
    UllmannMatcher,
    VF2Matcher,
    VF2PlusMatcher,
)

from .helpers import contained_pair, networkx_is_subgraph, random_pair

MATCHERS = [VF2Matcher(), VF2PlusMatcher(), UllmannMatcher(), GraphQLMatcher()]
MATCHER_IDS = [m.name for m in MATCHERS]


@pytest.fixture(params=MATCHERS, ids=MATCHER_IDS)
def matcher(request):
    return request.param


class TestBasicCases:
    def test_single_vertex_match(self, matcher):
        pattern = Graph(labels=["C"])
        target = Graph(labels=["C", "O"], edges=[(0, 1)])
        assert matcher.is_subgraph(pattern, target)

    def test_single_vertex_label_mismatch(self, matcher):
        pattern = Graph(labels=["N"])
        target = Graph(labels=["C", "O"], edges=[(0, 1)])
        assert not matcher.is_subgraph(pattern, target)

    def test_empty_pattern_always_matches(self, matcher):
        pattern = Graph(labels=[])
        target = Graph(labels=["C"])
        assert matcher.is_subgraph(pattern, target)

    def test_edge_in_triangle(self, matcher, triangle):
        pattern = Graph(labels=["C", "O"], edges=[(0, 1)])
        assert matcher.is_subgraph(pattern, triangle)

    def test_path_not_in_triangle(self, matcher, triangle, path_graph):
        assert not matcher.is_subgraph(path_graph, triangle)

    def test_graph_contains_itself(self, matcher, house_graph):
        assert matcher.is_subgraph(house_graph, house_graph)

    def test_non_induced_semantics(self, matcher):
        """A path of 3 C's must match inside a C-triangle (extra edge allowed)."""
        pattern = Graph(labels=["C", "C", "C"], edges=[(0, 1), (1, 2)])
        target = Graph(labels=["C", "C", "C"], edges=[(0, 1), (1, 2), (0, 2)])
        assert matcher.is_subgraph(pattern, target)

    def test_label_sensitive_cycle(self, matcher):
        pattern = Graph(labels=["C", "O", "C", "O"], edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
        target = Graph(labels=["C", "C", "O", "O"], edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
        assert not matcher.is_subgraph(pattern, target)

    def test_star_needs_degree(self, matcher, star_graph):
        target = Graph(labels=["C", "O", "O", "O"], edges=[(0, 1), (1, 2), (2, 3)])
        assert not matcher.is_subgraph(star_graph, target)

    def test_disconnected_pattern(self, matcher):
        pattern = Graph(labels=["C", "O"], edges=[])
        target = Graph(labels=["C", "N", "O"], edges=[(0, 1), (1, 2)])
        assert matcher.is_subgraph(pattern, target)

    def test_disconnected_pattern_insufficient_vertices(self, matcher):
        pattern = Graph(labels=["C", "C"], edges=[])
        target = Graph(labels=["C", "O"], edges=[(0, 1)])
        assert not matcher.is_subgraph(pattern, target)


class TestEmbeddings:
    def test_embedding_is_valid(self, matcher):
        for seed in range(6):
            pattern, target = contained_pair(seed)
            embedding = matcher.find_embedding(pattern, target)
            assert embedding is not None
            assert matcher.verify_embedding(pattern, target, embedding)

    def test_no_embedding_when_unmatched(self, matcher):
        pattern = Graph(labels=["N", "N"], edges=[(0, 1)])
        target = Graph(labels=["C", "O"], edges=[(0, 1)])
        assert matcher.find_embedding(pattern, target) is None

    def test_match_outcome_counts_effort(self, matcher):
        pattern, target = contained_pair(3)
        outcome = matcher.match(pattern, target)
        assert outcome.matched
        assert outcome.elapsed_s >= 0.0
        assert outcome.nodes_expanded >= 0


class TestAgainstNetworkxOracle:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_pairs_agree_with_networkx(self, matcher, seed):
        pattern, target = random_pair(seed)
        assert matcher.is_subgraph(pattern, target) == networkx_is_subgraph(pattern, target)

    @pytest.mark.parametrize("seed", range(15))
    def test_contained_pairs_always_match(self, matcher, seed):
        pattern, target = contained_pair(seed)
        assert matcher.is_subgraph(pattern, target)

    def test_all_matchers_agree_pairwise(self):
        for seed in range(25):
            pattern, target = random_pair(seed, target_order=10, pattern_order=4)
            answers = {m.name: m.is_subgraph(pattern, target) for m in MATCHERS}
            assert len(set(answers.values())) == 1, answers


class TestVerifyEmbedding:
    def test_rejects_wrong_size(self, triangle):
        assert not VF2Matcher.verify_embedding(triangle, triangle, {0: 0})

    def test_rejects_non_injective(self, path_graph):
        pattern = Graph(labels=["C", "C"], edges=[])
        target = Graph(labels=["C", "C"], edges=[])
        assert not VF2Matcher.verify_embedding(pattern, target, {0: 0, 1: 0})

    def test_rejects_label_mismatch(self):
        pattern = Graph(labels=["C"], edges=[])
        target = Graph(labels=["O"], edges=[])
        assert not VF2Matcher.verify_embedding(pattern, target, {0: 0})

    def test_rejects_missing_edge(self):
        pattern = Graph(labels=["C", "C"], edges=[(0, 1)])
        target = Graph(labels=["C", "C"], edges=[])
        assert not VF2Matcher.verify_embedding(pattern, target, {0: 0, 1: 1})

    def test_rejects_unknown_target_vertex(self):
        pattern = Graph(labels=["C"], edges=[])
        target = Graph(labels=["C"], edges=[])
        assert not VF2Matcher.verify_embedding(pattern, target, {0: 5})

    def test_accepts_valid_embedding(self, triangle):
        pattern = Graph(labels=["C", "O"], edges=[(0, 1)])
        assert VF2Matcher.verify_embedding(pattern, triangle, {0: 1, 1: 2})


class TestSearchBudget:
    def test_node_limit_enforced(self):
        # A large unlabelled-ish search with an absurdly small node budget.
        pattern = Graph(labels=["C"] * 6, edges=[(i, i + 1) for i in range(5)])
        target = Graph(
            labels=["C"] * 12,
            edges=[(i, j) for i in range(12) for j in range(i + 1, 12)],
        )
        budget = SearchBudget(node_limit=3)
        with pytest.raises(MatchTimeout):
            VF2Matcher().is_subgraph(pattern, target, budget=budget)

    def test_budget_counts_nodes(self):
        budget = SearchBudget()
        pattern, target = contained_pair(1)
        VF2Matcher().match(pattern, target, budget=budget)
        assert budget.nodes_expanded > 0
