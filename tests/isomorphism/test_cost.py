"""Tests for the analytic sub-iso cost model used by PINC."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.graph import Graph
from repro.isomorphism.cost import estimate_query_cost, estimate_subiso_cost


class TestEstimateSubisoCost:
    def test_matches_formula_small_values(self):
        # N=5, n=3, L=2: 5 * 5!/(2^4 * 2!) = 5 * 120 / (16 * 2) = 18.75
        assert estimate_subiso_cost(3, 2, 5) == pytest.approx(18.75)

    def test_single_label_formula(self):
        # N=4, n=2, L=1: 4 * 4!/(1 * 2!) = 48
        assert estimate_subiso_cost(2, 1, 4) == pytest.approx(48.0)

    def test_zero_when_target_smaller(self):
        assert estimate_subiso_cost(10, 3, 5) == 0.0

    def test_zero_for_degenerate_inputs(self):
        assert estimate_subiso_cost(0, 1, 5) == 0.0
        assert estimate_subiso_cost(3, 1, 0) == 0.0

    def test_labels_clamped_to_one(self):
        assert estimate_subiso_cost(2, 0, 4) == estimate_subiso_cost(2, 1, 4)

    def test_monotone_in_target_size(self):
        costs = [estimate_subiso_cost(5, 3, n) for n in range(5, 30, 5)]
        assert all(a < b for a, b in zip(costs, costs[1:], strict=False))

    def test_more_labels_cheaper(self):
        assert estimate_subiso_cost(5, 4, 20) < estimate_subiso_cost(5, 2, 20)

    def test_large_values_do_not_overflow(self):
        value = estimate_subiso_cost(50, 3, 2000)
        assert value > 0
        assert math.isinf(value) or value < float("inf") or True  # never raises

    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(1, 20),
        labels=st.integers(1, 10),
        big_n=st.integers(1, 200),
    )
    def test_never_negative(self, n, labels, big_n):
        assert estimate_subiso_cost(n, labels, big_n) >= 0.0


class TestEstimateQueryCost:
    def test_wrapper_uses_graph_attributes(self, triangle):
        target = Graph(labels=["C"] * 10, edges=[(i, i + 1) for i in range(9)])
        expected = estimate_subiso_cost(3, 2, 10)
        assert estimate_query_cost(triangle, target) == pytest.approx(expected)

    def test_zero_for_small_target(self, path_graph, triangle):
        assert estimate_query_cost(path_graph, triangle) == 0.0
