"""Tests for embedding enumeration (the matching problem)."""

from __future__ import annotations


from repro.graphs.graph import Graph
from repro.isomorphism import VF2Matcher, count_embeddings, find_all_embeddings, iter_embeddings

from .helpers import contained_pair, networkx_is_subgraph


class TestCounting:
    def test_edge_in_triangle_counts_all_injections(self, triangle):
        pattern = Graph(labels=["C", "C"], edges=[(0, 1)])
        # The C-C edge maps onto (0,1) and (1,0): two injections.
        assert count_embeddings(pattern, triangle) == 2

    def test_single_vertex_counts_label_occurrences(self, star_graph):
        pattern = Graph(labels=["O"])
        assert count_embeddings(pattern, star_graph) == 3

    def test_empty_pattern_has_one_embedding(self, triangle):
        assert count_embeddings(Graph(labels=[]), triangle) == 1

    def test_no_embeddings_for_mismatch(self, triangle):
        pattern = Graph(labels=["N"])
        assert count_embeddings(pattern, triangle) == 0

    def test_limit_respected(self, star_graph):
        pattern = Graph(labels=["O"])
        assert count_embeddings(pattern, star_graph, limit=2) == 2

    def test_path_in_cycle(self):
        cycle = Graph(labels=["C"] * 4, edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
        path = Graph(labels=["C", "C", "C"], edges=[(0, 1), (1, 2)])
        # Each of the 4 middle vertices with 2 orientations: 8 embeddings.
        assert count_embeddings(path, cycle) == 8


class TestIterAndMaterialise:
    def test_embeddings_are_valid(self):
        for seed in range(5):
            pattern, target = contained_pair(seed, target_order=10)
            embeddings = find_all_embeddings(pattern, target, limit=10)
            assert embeddings, "a contained pair must have at least one embedding"
            for embedding in embeddings:
                assert VF2Matcher.verify_embedding(pattern, target, embedding)

    def test_embeddings_distinct(self):
        pattern = Graph(labels=["C", "C"], edges=[(0, 1)])
        target = Graph(labels=["C"] * 3, edges=[(0, 1), (1, 2), (0, 2)])
        embeddings = find_all_embeddings(pattern, target)
        as_tuples = {tuple(sorted(e.items())) for e in embeddings}
        assert len(as_tuples) == len(embeddings) == 6

    def test_iterator_is_lazy(self, star_graph):
        pattern = Graph(labels=["O"])
        iterator = iter_embeddings(pattern, star_graph)
        first = next(iterator)
        assert set(first) == {0}

    def test_consistent_with_decision_problem(self):
        for seed in range(10):
            pattern, target = contained_pair(seed, target_order=9)
            has_embedding = count_embeddings(pattern, target, limit=1) > 0
            assert has_embedding == networkx_is_subgraph(pattern, target)
