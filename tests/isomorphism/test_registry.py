"""Tests for the matcher registry."""

from __future__ import annotations

import pytest

from repro.exceptions import MatcherError
from repro.isomorphism import (
    GraphQLMatcher,
    UllmannMatcher,
    VF2Matcher,
    VF2PlusMatcher,
    available_matchers,
    matcher_by_name,
    register_matcher,
)


class TestRegistry:
    def test_builtin_matchers_available(self):
        names = available_matchers()
        assert {"vf2", "vf2plus", "ullmann", "graphql"} <= set(names)

    @pytest.mark.parametrize(
        "name, cls",
        [
            ("vf2", VF2Matcher),
            ("vf2plus", VF2PlusMatcher),
            ("ullmann", UllmannMatcher),
            ("graphql", GraphQLMatcher),
        ],
    )
    def test_matcher_by_name(self, name, cls):
        assert isinstance(matcher_by_name(name), cls)

    def test_name_is_case_insensitive(self):
        assert isinstance(matcher_by_name("  VF2Plus "), VF2PlusMatcher)

    def test_unknown_matcher_raises(self):
        with pytest.raises(MatcherError):
            matcher_by_name("turbo-iso")

    def test_register_custom_matcher(self):
        class MyMatcher(VF2Matcher):
            name = "custom"

        register_matcher("custom", MyMatcher)
        assert isinstance(matcher_by_name("custom"), MyMatcher)
        assert "custom" in available_matchers()

    def test_register_empty_name_rejected(self):
        with pytest.raises(MatcherError):
            register_matcher("  ", VF2Matcher)

    def test_each_call_returns_new_instance(self):
        assert matcher_by_name("vf2") is not matcher_by_name("vf2")
