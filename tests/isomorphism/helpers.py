"""Shared helpers for the sub-iso test modules."""

from __future__ import annotations

import random
from typing import Tuple

import networkx as nx

from repro.graphs.generators import random_connected_graph
from repro.graphs.graph import Graph

LABELS = ["C", "N", "O"]


def to_networkx(graph: Graph) -> "nx.Graph":
    """Convert a repro Graph to a networkx graph with ``label`` attributes."""
    result = nx.Graph()
    for vertex in graph.vertices():
        result.add_node(vertex, label=graph.label(vertex))
    result.add_edges_from(graph.edges)
    return result


def networkx_is_subgraph(pattern: Graph, target: Graph) -> bool:
    """Reference oracle: non-induced, label-preserving subgraph isomorphism."""
    matcher = nx.algorithms.isomorphism.GraphMatcher(
        to_networkx(target),
        to_networkx(pattern),
        node_match=lambda a, b: a["label"] == b["label"],
    )
    return matcher.subgraph_is_monomorphic()


def random_pair(seed: int, target_order: int = 12, pattern_order: int = 5) -> Tuple[Graph, Graph]:
    """A random (pattern, target) pair; the pattern is not necessarily contained."""
    rng = random.Random(seed)
    target = random_connected_graph(target_order, 2.6, LABELS, rng)
    pattern = random_connected_graph(pattern_order, 2.2, LABELS, rng)
    return pattern, target


def contained_pair(seed: int, target_order: int = 14) -> Tuple[Graph, Graph]:
    """A random (pattern, target) pair where the pattern is guaranteed contained."""
    rng = random.Random(seed)
    target = random_connected_graph(target_order, 2.8, LABELS, rng)
    k = rng.randint(2, max(2, target_order // 2))
    vertices = rng.sample(range(target.order), k=k)
    pattern = target.induced_subgraph(vertices)
    # Drop some edges to exercise the non-induced semantics.
    if pattern.size > 1:
        keep = rng.sample(list(pattern.edges), k=max(1, pattern.size - 1))
        pattern = pattern.edge_subgraph(keep)
    return pattern, target
