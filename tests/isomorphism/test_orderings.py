"""Algorithm-specific tests: vertex orderings and refinement internals."""

from __future__ import annotations

import random
from collections import Counter

from repro.graphs.generators import random_connected_graph
from repro.graphs.graph import Graph
from repro.isomorphism.graphql_match import GraphQLMatcher, _counter_covers
from repro.isomorphism.ullmann import UllmannMatcher
from repro.isomorphism.vf2 import VF2Matcher, connectivity_order
from repro.isomorphism.vf2_plus import VF2PlusMatcher


class TestConnectivityOrder:
    def test_order_is_permutation(self, house_graph):
        order = connectivity_order(house_graph)
        assert sorted(order) == list(range(house_graph.order))

    def test_each_vertex_has_earlier_neighbour(self, house_graph):
        order = connectivity_order(house_graph)
        placed = {order[0]}
        for vertex in order[1:]:
            assert any(n in placed for n in house_graph.neighbors(vertex))
            placed.add(vertex)

    def test_disconnected_graph_covered(self):
        g = Graph(labels=["C", "C", "O", "O"], edges=[(0, 1), (2, 3)])
        order = connectivity_order(g)
        assert sorted(order) == [0, 1, 2, 3]

    def test_empty_graph(self):
        assert connectivity_order(Graph(labels=[])) == []

    def test_priority_controls_start(self, path_graph):
        order = connectivity_order(path_graph, priority=[0, 0, 0, 10])
        assert order[0] == 3

    def test_random_graphs_connectivity_property(self):
        rng = random.Random(0)
        for _ in range(10):
            g = random_connected_graph(rng.randint(2, 20), 2.4, ["C", "O"], rng)
            order = connectivity_order(g)
            placed = {order[0]}
            for vertex in order[1:]:
                assert any(n in placed for n in g.neighbors(vertex))
                placed.add(vertex)


class TestVF2PlusOrdering:
    def test_rare_label_first(self):
        pattern = Graph(labels=["C", "C", "N"], edges=[(0, 1), (1, 2)])
        target = Graph(
            labels=["C"] * 8 + ["N"],
            edges=[(i, i + 1) for i in range(8)],
        )
        order = VF2PlusMatcher()._order(pattern, target)
        assert order[0] == 2  # the N vertex is rarest in the target

    def test_same_result_as_vf2(self):
        rng = random.Random(1)
        for seed in range(10):
            rng = random.Random(seed)
            target = random_connected_graph(12, 2.5, ["C", "N", "O"], rng)
            pattern = target.induced_subgraph(rng.sample(range(12), k=5))
            assert VF2Matcher().is_subgraph(pattern, target) == VF2PlusMatcher().is_subgraph(
                pattern, target
            )


class TestUllmannRefinement:
    def test_initial_domains_respect_labels_and_degree(self, star_graph):
        pattern = Graph(labels=["C", "O"], edges=[(0, 1)])
        domains = UllmannMatcher()._initial_domains(pattern, star_graph)
        assert domains[0] == {0}
        assert domains[1] == {1, 2, 3}

    def test_refinement_prunes_impossible(self):
        pattern = Graph(labels=["C", "C", "C"], edges=[(0, 1), (1, 2)])
        # Target: two disconnected C-C edges; the middle pattern vertex needs
        # two C neighbours, which no target vertex has.
        target = Graph(labels=["C"] * 4, edges=[(0, 1), (2, 3)])
        matcher = UllmannMatcher()
        domains = matcher._initial_domains(pattern, target)
        assert not matcher._refine(pattern, target, domains) or not all(domains)

    def test_refinement_keeps_valid_candidates(self, triangle):
        pattern = Graph(labels=["C", "O"], edges=[(0, 1)])
        matcher = UllmannMatcher()
        domains = matcher._initial_domains(pattern, triangle)
        assert matcher._refine(pattern, triangle, domains)
        assert domains[1] == {2}


class TestGraphQLInternals:
    def test_counter_covers(self):
        assert _counter_covers(Counter({"C": 2, "O": 1}), Counter({"C": 1}))
        assert not _counter_covers(Counter({"C": 1}), Counter({"C": 2}))

    def test_initial_candidates_use_profiles(self, path_graph):
        pattern = Graph(labels=["C", "O"], edges=[(0, 1)])
        matcher = GraphQLMatcher()
        candidates = matcher._initial_candidates(pattern, path_graph)
        # Pattern vertex 0 is a C adjacent to an O: only vertex 1 qualifies.
        assert candidates[0] == {1}

    def test_search_order_prefers_small_candidate_sets(self, path_graph):
        pattern = Graph(labels=["C", "C", "O"], edges=[(0, 1), (1, 2)])
        matcher = GraphQLMatcher()
        candidates = matcher._initial_candidates(pattern, path_graph)
        order = matcher._search_order(pattern, candidates)
        assert sorted(order) == [0, 1, 2]
        assert len(candidates[order[0]]) == min(len(c) for c in candidates)
