"""Property tests for the integer-bitmask views backing the matcher core.

The bitmask layer (``neighbor_masks``, interned ``label_ids``, per-label and
degree-threshold vertex masks) is a *redundant encoding* of the adjacency and
label data the rest of the library reads through ``neighbors()`` /
``label()``.  These tests pin the equivalence on random labelled graphs, so
any future drift between the two encodings fails loudly instead of silently
corrupting search results.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import random_connected_graph
from repro.graphs.graph import Graph, intern_label
from repro.isomorphism import VF2Matcher, VF2PlusMatcher

LABELS = ["C", "N", "O", "S"]


def _bits(mask: int) -> set:
    bits = set()
    while mask:
        low = mask & -mask
        mask ^= low
        bits.add(low.bit_length() - 1)
    return bits


def _random_graph(seed: int) -> Graph:
    rng = random.Random(seed)
    order = rng.randint(1, 24)
    return random_connected_graph(order, rng.uniform(1.5, 3.5), LABELS, rng)


class TestBitmaskAdjacency:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_neighbor_masks_match_neighbors(self, seed):
        graph = _random_graph(seed)
        for vertex in graph.vertices():
            assert _bits(graph.neighbor_mask(vertex)) == set(graph.neighbors(vertex))
            assert graph.neighbor_mask(vertex).bit_count() == graph.degree(vertex)
            # No self-loops: a vertex never appears in its own mask.
            assert not graph.neighbor_mask(vertex) >> vertex & 1

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_masks_are_symmetric(self, seed):
        graph = _random_graph(seed)
        for u, v in graph.edges:
            assert graph.neighbor_mask(u) >> v & 1
            assert graph.neighbor_mask(v) >> u & 1

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_label_masks_match_vertices_with_label(self, seed):
        graph = _random_graph(seed)
        for label in graph.distinct_labels():
            assert _bits(graph.label_mask(label)) == set(graph.vertices_with_label(label))
            assert graph.label_id_mask(intern_label(label)) == graph.label_mask(label)
        assert graph.label_mask("no-such-label") == 0

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_label_ids_are_consistent(self, seed):
        graph = _random_graph(seed)
        for vertex in graph.vertices():
            assert graph.label_id(vertex) == intern_label(graph.label(vertex))
        # Interning is global: two graphs sharing a label share its id.
        other = Graph(labels=[graph.label(0)])
        assert other.label_id(0) == graph.label_id(0)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_degree_ge_masks(self, seed):
        graph = _random_graph(seed)
        max_degree = max((graph.degree(v) for v in graph.vertices()), default=0)
        for threshold in range(0, max_degree + 3):
            expected = {v for v in graph.vertices() if graph.degree(v) >= threshold}
            assert _bits(graph.degree_ge_mask(threshold)) == expected

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_neighbor_label_ge_masks(self, seed):
        graph = _random_graph(seed)
        for label in LABELS:
            label_id = intern_label(label)
            counts = {
                v: sum(1 for nb in graph.neighbors(v) if graph.label(nb) == label)
                for v in graph.vertices()
            }
            for threshold in range(0, max(counts.values(), default=0) + 2):
                expected = {v for v, c in counts.items() if c >= threshold}
                assert _bits(graph.neighbor_label_ge_mask(label_id, threshold)) == expected

    def test_full_vertex_mask(self):
        assert Graph(labels=[]).full_vertex_mask == 0
        graph = Graph(labels=["C", "O", "N"], edges=[(0, 1)])
        assert graph.full_vertex_mask == 0b111

    def test_with_id_shares_bitmask_views(self):
        graph = _random_graph(3)
        clone = graph.with_id("renamed")
        assert clone.neighbor_masks is graph.neighbor_masks
        assert clone.label_ids is graph.label_ids
        assert clone.degree_sequence() == graph.degree_sequence()


class TestPlanCacheDeterminism:
    def test_repeated_matches_agree_and_hit_plan_cache(self):
        matcher = VF2PlusMatcher()
        rng = random.Random(11)
        target = random_connected_graph(16, 2.8, LABELS, rng)
        pattern = target.induced_subgraph(rng.sample(range(16), k=6))
        first = matcher.match(pattern, target)
        assert len(matcher._plan_cache) == 1
        second = matcher.match(pattern, target)
        assert len(matcher._plan_cache) == 1  # same pair: plan reused
        assert first.matched == second.matched
        assert first.embedding == second.embedding
        assert first.nodes_expanded == second.nodes_expanded
        assert matcher.verify_embedding(pattern, target, second.embedding)

    def test_plan_cache_bounded(self):
        matcher = VF2Matcher()
        matcher.PLAN_CACHE_LIMIT = 4
        for seed in range(10):
            r = random.Random(seed)
            target = random_connected_graph(10, 2.2, LABELS, r)
            pattern = target.induced_subgraph(r.sample(range(10), k=4))
            matcher.is_subgraph(pattern, target)
        assert len(matcher._plan_cache) <= 4

    def test_structurally_equal_pairs_share_plans(self):
        matcher = VF2Matcher()
        pattern_a = Graph(labels=["C", "O"], edges=[(0, 1)])
        pattern_b = Graph(labels=["C", "O"], edges=[(0, 1)], graph_id="other")
        target = Graph(labels=["C", "O", "C"], edges=[(0, 1), (1, 2)])
        assert matcher.is_subgraph(pattern_a, target)
        assert matcher.is_subgraph(pattern_b, target)
        # graph_id does not participate in structure equality: one plan.
        assert len(matcher._plan_cache) == 1
