"""Tests for the Zipf sampler."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.exceptions import WorkloadError
from repro.workloads.zipf import ZipfSampler, zipf_weights


class TestZipfWeights:
    def test_weights_normalised(self):
        assert sum(zipf_weights(50, 1.4)) == pytest.approx(1.0)

    def test_weights_monotone_decreasing(self):
        weights = zipf_weights(20, 1.1)
        assert all(a >= b for a, b in zip(weights, weights[1:], strict=False))

    def test_alpha_zero_is_uniform(self):
        weights = zipf_weights(4, 0.0)
        assert all(w == pytest.approx(0.25) for w in weights)

    def test_invalid_population(self):
        with pytest.raises(WorkloadError):
            zipf_weights(0, 1.0)

    def test_negative_alpha_rejected(self):
        with pytest.raises(WorkloadError):
            zipf_weights(5, -1.0)

    def test_higher_alpha_more_skewed(self):
        low = zipf_weights(100, 1.1)
        high = zipf_weights(100, 1.7)
        assert high[0] > low[0]


class TestZipfSampler:
    def test_samples_in_range(self):
        sampler = ZipfSampler(10, 1.4, random.Random(0))
        for _ in range(200):
            assert 0 <= sampler.sample() < 10

    def test_sample_many(self):
        sampler = ZipfSampler(10, 1.4, random.Random(0))
        assert len(sampler.sample_many(25)) == 25

    def test_rank_zero_most_popular(self):
        sampler = ZipfSampler(50, 1.4, random.Random(1))
        counts = Counter(sampler.sample_many(3000))
        assert counts[0] == max(counts.values())

    def test_empirical_frequency_matches_probability(self):
        sampler = ZipfSampler(20, 1.4, random.Random(2))
        counts = Counter(sampler.sample_many(20000))
        assert counts[0] / 20000 == pytest.approx(sampler.probability(0), rel=0.15)

    def test_deterministic_given_seed(self):
        a = ZipfSampler(30, 1.4, random.Random(7)).sample_many(50)
        b = ZipfSampler(30, 1.4, random.Random(7)).sample_many(50)
        assert a == b

    def test_properties(self):
        sampler = ZipfSampler(30, 1.7, random.Random(0))
        assert sampler.alpha == 1.7
        assert sampler.population_size == 30
