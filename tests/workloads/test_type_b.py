"""Tests for Type B workload generation (query pools with no-answer queries)."""

from __future__ import annotations

import pytest

from repro.exceptions import WorkloadError
from repro.isomorphism import VF2PlusMatcher
from repro.workloads.type_b import QueryPools, TypeBWorkloadGenerator, generate_type_b

MATCHER = VF2PlusMatcher()


@pytest.fixture(scope="module")
def pools(tiny_dataset):
    return QueryPools(
        tiny_dataset,
        query_sizes=(3, 5),
        answer_pool_size=12,
        no_answer_pool_size=4,
        seed=3,
    )


class TestQueryPools:
    def test_pool_sizes(self, pools):
        assert len(pools.answer_pool) == 12
        assert len(pools.no_answer_pool) == 4

    def test_answer_pool_queries_have_answers(self, pools, tiny_dataset):
        for query in pools.answer_pool:
            assert any(MATCHER.is_subgraph(query, g) for g in tiny_dataset)

    def test_no_answer_pool_queries_have_no_answers(self, pools, tiny_dataset):
        for query in pools.no_answer_pool:
            assert not any(MATCHER.is_subgraph(query, g) for g in tiny_dataset)

    def test_invalid_parameters(self, tiny_dataset):
        with pytest.raises(WorkloadError):
            QueryPools(tiny_dataset, query_sizes=(), answer_pool_size=5)
        with pytest.raises(WorkloadError):
            QueryPools(tiny_dataset, query_sizes=(3,), answer_pool_size=0)


class TestTypeBWorkloads:
    def test_zero_probability_only_answer_pool(self, pools, tiny_dataset):
        generator = TypeBWorkloadGenerator(pools, no_answer_probability=0.0, seed=1)
        workload = generator.generate(30, dataset_name=tiny_dataset.name)
        answer_keys = {q.structure_key() for q in pools.answer_pool}
        assert all(q.structure_key() in answer_keys for q in workload)
        assert workload.name == "TypeB-0%"

    def test_full_probability_only_no_answer_pool(self, pools, tiny_dataset):
        generator = TypeBWorkloadGenerator(pools, no_answer_probability=1.0, seed=1)
        workload = generator.generate(20, dataset_name=tiny_dataset.name)
        no_answer_keys = {q.structure_key() for q in pools.no_answer_pool}
        assert all(q.structure_key() in no_answer_keys for q in workload)

    def test_mixed_probability(self, pools, tiny_dataset):
        generator = TypeBWorkloadGenerator(pools, no_answer_probability=0.5, seed=2)
        workload = generator.generate(60, dataset_name=tiny_dataset.name)
        no_answer_keys = {q.structure_key() for q in pools.no_answer_pool}
        fraction = sum(1 for q in workload if q.structure_key() in no_answer_keys) / 60
        assert 0.2 <= fraction <= 0.8
        assert workload.name == "TypeB-50%"

    def test_invalid_probability(self, pools):
        with pytest.raises(WorkloadError):
            TypeBWorkloadGenerator(pools, no_answer_probability=1.5)

    def test_invalid_count(self, pools):
        generator = TypeBWorkloadGenerator(pools, no_answer_probability=0.2)
        with pytest.raises(WorkloadError):
            generator.generate(0)

    def test_deterministic_given_seed(self, pools):
        a = TypeBWorkloadGenerator(pools, 0.2, seed=5).generate(25)
        b = TypeBWorkloadGenerator(pools, 0.2, seed=5).generate(25)
        assert list(a) == list(b)

    def test_queries_repeat_under_zipf(self, pools):
        workload = TypeBWorkloadGenerator(pools, 0.0, alpha=1.7, seed=6).generate(40)
        distinct = len({q.structure_key() for q in workload})
        assert distinct < 40  # popular pool entries are drawn repeatedly

    def test_convenience_wrapper_builds_pools(self, tiny_dataset):
        workload = generate_type_b(
            tiny_dataset,
            no_answer_probability=0.2,
            query_count=15,
            query_sizes=(3, 5),
            answer_pool_size=8,
            no_answer_pool_size=3,
            seed=4,
        )
        assert len(workload) == 15
        assert workload.parameters["no_answer_probability"] == 0.2

    def test_convenience_wrapper_reuses_supplied_pools(self, pools, tiny_dataset):
        workload = generate_type_b(
            tiny_dataset,
            no_answer_probability=0.0,
            query_count=10,
            query_sizes=(3, 5),
            pools=pools,
        )
        assert len(workload) == 10
