"""Tests for workload serialisation."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import WorkloadError
from repro.workloads import generate_type_a, load_workload, save_workload


@pytest.fixture
def workload(tiny_dataset):
    return generate_type_a(tiny_dataset, "ZZ", 10, query_sizes=(3, 5), seed=7)


class TestRoundTrip:
    def test_round_trip_preserves_queries(self, workload, tmp_path):
        path = tmp_path / "workload.json"
        save_workload(workload, path)
        loaded = load_workload(path)
        assert len(loaded) == len(workload)
        assert list(loaded) == list(workload)

    def test_round_trip_preserves_metadata(self, workload, tmp_path):
        path = tmp_path / "workload.json"
        save_workload(workload, path)
        loaded = load_workload(path)
        assert loaded.name == workload.name
        assert loaded.dataset_name == workload.dataset_name
        assert loaded.parameters["category"] == "ZZ"
        assert loaded.parameters["seed"] == 7

    def test_tuples_serialised_as_lists(self, workload, tmp_path):
        path = tmp_path / "workload.json"
        save_workload(workload, path)
        payload = json.loads(path.read_text())
        assert payload["parameters"]["query_sizes"] == [3, 5]


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError):
            load_workload(tmp_path / "nope.json")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(WorkloadError):
            load_workload(path)

    def test_wrong_version(self, workload, tmp_path):
        path = tmp_path / "workload.json"
        save_workload(workload, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(WorkloadError):
            load_workload(path)

    def test_empty_workload_rejected(self, workload, tmp_path):
        path = tmp_path / "workload.json"
        save_workload(workload, path)
        payload = json.loads(path.read_text())
        payload["queries"] = []
        path.write_text(json.dumps(payload))
        with pytest.raises(WorkloadError):
            load_workload(path)
