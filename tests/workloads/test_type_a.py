"""Tests for Type A workload generation (UU / ZU / ZZ)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.exceptions import WorkloadError
from repro.isomorphism import VF2PlusMatcher
from repro.workloads.type_a import (
    SMALL_DATASET_QUERY_SIZES,
    TypeAWorkloadGenerator,
    generate_type_a,
)

MATCHER = VF2PlusMatcher()


class TestGeneratorValidation:
    def test_invalid_category(self, tiny_dataset):
        with pytest.raises(WorkloadError):
            TypeAWorkloadGenerator(tiny_dataset, category="XX")

    def test_empty_sizes(self, tiny_dataset):
        with pytest.raises(WorkloadError):
            TypeAWorkloadGenerator(tiny_dataset, query_sizes=())

    def test_invalid_query_count(self, tiny_dataset):
        generator = TypeAWorkloadGenerator(tiny_dataset, query_sizes=(3, 5))
        with pytest.raises(WorkloadError):
            generator.generate(0)

    def test_category_normalised(self, tiny_dataset):
        assert TypeAWorkloadGenerator(tiny_dataset, category="zz").category == "ZZ"


class TestGeneratedQueries:
    def test_workload_length_and_metadata(self, tiny_dataset):
        workload = generate_type_a(tiny_dataset, "ZZ", 12, query_sizes=(3, 5), seed=1)
        assert len(workload) == 12
        assert workload.name == "TypeA-ZZ"
        assert workload.dataset_name == tiny_dataset.name
        assert workload.parameters["category"] == "ZZ"

    def test_queries_have_requested_sizes(self, tiny_dataset):
        workload = generate_type_a(tiny_dataset, "UU", 15, query_sizes=(3, 6), seed=2)
        assert all(q.size in (3, 6) or q.size <= 6 for q in workload)

    def test_queries_have_answers(self, tiny_dataset):
        """Type A queries are extracted from dataset graphs, so each has >= 1 answer."""
        workload = generate_type_a(tiny_dataset, "ZU", 10, query_sizes=(3, 5), seed=3)
        for query in workload:
            assert any(MATCHER.is_subgraph(query, g) for g in tiny_dataset)

    def test_deterministic_given_seed(self, tiny_dataset):
        a = generate_type_a(tiny_dataset, "ZZ", 10, query_sizes=(3, 5), seed=9)
        b = generate_type_a(tiny_dataset, "ZZ", 10, query_sizes=(3, 5), seed=9)
        assert list(a) == list(b)

    def test_different_seeds_differ(self, tiny_dataset):
        a = generate_type_a(tiny_dataset, "ZZ", 10, query_sizes=(3, 5), seed=1)
        b = generate_type_a(tiny_dataset, "ZZ", 10, query_sizes=(3, 5), seed=2)
        assert list(a) != list(b)

    def test_default_sizes_constant(self):
        assert SMALL_DATASET_QUERY_SIZES == (4, 8, 12, 16, 20)

    def test_zz_more_repetitive_than_uu(self, small_dataset):
        """Skewed selection must produce more repeated queries than uniform."""
        zz = generate_type_a(small_dataset, "ZZ", 60, query_sizes=(4, 8), seed=5)
        uu = generate_type_a(small_dataset, "UU", 60, query_sizes=(4, 8), seed=5)

        def max_repeat(workload):
            return max(Counter(q.structure_key() for q in workload).values())

        assert max_repeat(zz) >= max_repeat(uu)

    def test_higher_alpha_more_skewed(self, small_dataset):
        low = generate_type_a(small_dataset, "ZZ", 60, query_sizes=(4,), alpha=1.1, seed=8)
        high = generate_type_a(small_dataset, "ZZ", 60, query_sizes=(4,), alpha=1.7, seed=8)

        def distinct(workload):
            return len({q.structure_key() for q in workload})

        assert distinct(high) <= distinct(low)
