"""Tests for the BFS / random-walk query extraction primitives."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import WorkloadError
from repro.graphs.generators import random_connected_graph
from repro.graphs.graph import Graph
from repro.isomorphism import VF2PlusMatcher
from repro.workloads.base import Workload, extract_query_bfs, extract_query_random_walk

MATCHER = VF2PlusMatcher()


def source_graph(seed=0, order=20):
    return random_connected_graph(order, 2.6, ["C", "N", "O"], random.Random(seed))


class TestBFSExtraction:
    def test_extracted_query_is_contained(self):
        source = source_graph()
        for size in (2, 4, 8):
            query = extract_query_bfs(source, 0, size)
            assert query is not None
            assert query.size == size
            assert MATCHER.is_subgraph(query, source)

    def test_query_is_connected(self):
        source = source_graph(3)
        query = extract_query_bfs(source, 2, 6)
        assert query is not None and query.is_connected()

    def test_deterministic_without_rng(self):
        source = source_graph(1)
        assert extract_query_bfs(source, 0, 6) == extract_query_bfs(source, 0, 6)

    def test_nested_sizes_are_nested_queries(self):
        """Smaller extractions from the same start are subgraphs of larger ones."""
        source = source_graph(5, order=25)
        small = extract_query_bfs(source, 0, 4)
        large = extract_query_bfs(source, 0, 10)
        assert small is not None and large is not None
        assert MATCHER.is_subgraph(small, large)

    def test_randomised_extraction_with_rng(self):
        source = source_graph(2)
        query = extract_query_bfs(source, 0, 5, rng=random.Random(0))
        assert query is not None and query.size == 5

    def test_too_large_request_returns_none(self):
        source = Graph(labels=["C", "C"], edges=[(0, 1)])
        assert extract_query_bfs(source, 0, 5) is None

    def test_invalid_arguments(self):
        source = source_graph()
        with pytest.raises(WorkloadError):
            extract_query_bfs(source, 0, 0)
        with pytest.raises(WorkloadError):
            extract_query_bfs(source, 999, 3)


class TestRandomWalkExtraction:
    def test_extracted_query_is_contained(self):
        source = source_graph(7)
        query = extract_query_random_walk(source, 0, 6, random.Random(1))
        assert query is not None
        assert query.size == 6
        assert MATCHER.is_subgraph(query, source)

    def test_walk_returns_none_when_stuck(self):
        source = Graph(labels=["C", "C"], edges=[(0, 1)])
        assert extract_query_random_walk(source, 0, 4, random.Random(0)) is None

    def test_isolated_start_returns_none(self):
        source = Graph(labels=["C", "C", "C"], edges=[(1, 2)])
        assert extract_query_random_walk(source, 0, 1, random.Random(0)) is None

    def test_invalid_arguments(self):
        source = source_graph()
        with pytest.raises(WorkloadError):
            extract_query_random_walk(source, 0, 0, random.Random(0))
        with pytest.raises(WorkloadError):
            extract_query_random_walk(source, 999, 3, random.Random(0))


class TestWorkloadContainer:
    def test_container_protocol(self, tiny_dataset):
        queries = (tiny_dataset[0].induced_subgraph(range(3)),) * 3
        workload = Workload(
            name="w", queries=queries, dataset_name="d", parameters={"alpha": 1.4}
        )
        assert len(workload) == 3
        assert workload[1] == queries[1]
        assert list(workload) == list(queries)
        assert "alpha=1.4" in workload.describe()
