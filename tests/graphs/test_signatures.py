"""Unit and property tests for structural signatures and necessary conditions."""

from __future__ import annotations

import random


from repro.graphs.generators import random_connected_graph
from repro.graphs.graph import Graph
from repro.graphs.signatures import (
    could_be_subgraph,
    degree_sequence_dominates,
    graph_signature,
    label_histogram_dominates,
    vertex_signature,
)
from repro.isomorphism.vf2_plus import VF2PlusMatcher


class TestLabelHistogramDominates:
    def test_dominates_when_superset(self, triangle, path_graph):
        small = Graph(labels=["C", "O"], edges=[(0, 1)])
        assert label_histogram_dominates(small, path_graph)

    def test_fails_when_label_missing(self, triangle):
        pattern = Graph(labels=["N"], edges=[])
        assert not label_histogram_dominates(pattern, triangle)

    def test_fails_when_count_insufficient(self):
        pattern = Graph(labels=["C", "C", "C"], edges=[])
        target = Graph(labels=["C", "C", "O"], edges=[])
        assert not label_histogram_dominates(pattern, target)


class TestDegreeSequenceDominates:
    def test_smaller_graph_dominated(self):
        pattern = Graph(labels=["C", "C"], edges=[(0, 1)])
        target = Graph(labels=["C", "C", "C"], edges=[(0, 1), (1, 2)])
        assert degree_sequence_dominates(pattern, target)

    def test_larger_pattern_fails(self):
        pattern = Graph(labels=["C"] * 4, edges=[(0, 1), (1, 2), (2, 3)])
        target = Graph(labels=["C"] * 3, edges=[(0, 1), (1, 2)])
        assert not degree_sequence_dominates(pattern, target)

    def test_high_degree_pattern_fails(self, star_graph, path_graph):
        # The star's centre has degree 3; the path's max degree is 2.
        assert not degree_sequence_dominates(star_graph, path_graph)


class TestCouldBeSubgraph:
    def test_trivial_cases(self, triangle, path_graph):
        edge = Graph(labels=["C", "C"], edges=[(0, 1)])
        assert could_be_subgraph(edge, triangle)
        assert not could_be_subgraph(path_graph, triangle)  # more vertices

    def test_never_false_negative_on_real_containment(self):
        """could_be_subgraph must say "maybe" whenever containment truly holds."""
        matcher = VF2PlusMatcher()
        rng = random.Random(5)
        for _trial in range(20):
            target = random_connected_graph(
                order=rng.randint(6, 14),
                average_degree=2.5,
                alphabet=["C", "N", "O"],
                rng=rng,
            )
            vertices = rng.sample(range(target.order), k=rng.randint(2, target.order))
            pattern = target.induced_subgraph(vertices)
            if matcher.is_subgraph(pattern, target):
                assert could_be_subgraph(pattern, target)


class TestVertexSignature:
    def test_signature_contents(self, path_graph):
        label, degree, neighbours = vertex_signature(path_graph, 1)
        assert label == "C"
        assert degree == 2
        assert neighbours == (repr("C"), repr("O"))

    def test_leaf_signature(self, star_graph):
        label, degree, neighbours = vertex_signature(star_graph, 1)
        assert degree == 1
        assert neighbours == (repr("C"),)


class TestGraphSignature:
    def test_isomorphic_graphs_same_signature(self):
        a = Graph(labels=["C", "O", "N"], edges=[(0, 1), (1, 2)])
        b = Graph(labels=["N", "O", "C"], edges=[(0, 1), (1, 2)])
        assert graph_signature(a) == graph_signature(b)

    def test_different_structure_different_signature(self, triangle, path_graph):
        assert graph_signature(triangle) != graph_signature(path_graph)

    def test_signature_fields(self, triangle):
        signature = graph_signature(triangle)
        assert signature["order"] == 3
        assert signature["size"] == 3
        assert signature["degree_sequence"] == (2, 2, 2)
