"""Tests for random-graph and stand-in dataset generators."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graphs.generators import (
    aids_like,
    dataset_by_name,
    pcm_like,
    pdbs_like,
    random_connected_graph,
    random_labels,
    random_tree,
    synthetic_like,
    zipfian_label_weights,
)
from repro.graphs.generators.families import family_dataset_graphs, perturb_graph
from repro.graphs.graph import Graph


class TestZipfianWeights:
    def test_weights_sum_to_one(self):
        weights = zipfian_label_weights(10, skew=1.5)
        assert sum(weights) == pytest.approx(1.0)

    def test_weights_decreasing(self):
        weights = zipfian_label_weights(8, skew=1.0)
        assert all(a >= b for a, b in zip(weights, weights[1:], strict=False))

    def test_zero_skew_uniformish(self):
        weights = zipfian_label_weights(5, skew=0.0)
        assert weights == [1.0] * 5

    def test_invalid_alphabet_size(self):
        with pytest.raises(GraphError):
            zipfian_label_weights(0)


class TestRandomTree:
    def test_tree_edge_count(self):
        rng = random.Random(1)
        edges = random_tree(10, rng)
        assert len(edges) == 9

    def test_tree_is_connected(self):
        rng = random.Random(2)
        edges = random_tree(15, rng)
        graph = Graph(labels=["C"] * 15, edges=edges)
        assert graph.is_connected()

    def test_invalid_order(self):
        with pytest.raises(GraphError):
            random_tree(0, random.Random(0))


class TestRandomLabels:
    def test_label_count(self):
        labels = random_labels(7, ["C", "O"], random.Random(0))
        assert len(labels) == 7
        assert set(labels) <= {"C", "O"}

    def test_empty_alphabet_rejected(self):
        with pytest.raises(GraphError):
            random_labels(3, [], random.Random(0))

    def test_weighted_labels(self):
        labels = random_labels(200, ["C", "O"], random.Random(0), weights=[0.95, 0.05])
        assert labels.count("C") > labels.count("O")


class TestRandomConnectedGraph:
    @settings(max_examples=25, deadline=None)
    @given(order=st.integers(min_value=1, max_value=30), seed=st.integers(0, 1000))
    def test_connected_and_sized(self, order, seed):
        rng = random.Random(seed)
        graph = random_connected_graph(order, 2.5, ["C", "N", "O"], rng)
        assert graph.order == order
        assert graph.is_connected()

    def test_average_degree_approximated(self):
        rng = random.Random(3)
        graph = random_connected_graph(100, 6.0, ["C"], rng)
        assert graph.average_degree() == pytest.approx(6.0, rel=0.25)

    def test_invalid_order(self):
        with pytest.raises(GraphError):
            random_connected_graph(0, 2.0, ["C"], random.Random(0))

    def test_single_vertex(self):
        graph = random_connected_graph(1, 2.0, ["C"], random.Random(0))
        assert graph.order == 1 and graph.size == 0

    def test_deterministic_given_seed(self):
        a = random_connected_graph(12, 2.2, ["C", "O"], random.Random(9))
        b = random_connected_graph(12, 2.2, ["C", "O"], random.Random(9))
        assert a == b


class TestFamilies:
    def test_perturb_preserves_most_structure(self):
        rng = random.Random(1)
        template = random_connected_graph(20, 2.2, ["C", "O"], rng)
        variant = perturb_graph(template, rng, alphabet=["C", "O"])
        assert variant.order >= template.order
        shared = set(template.edges) & set(variant.edges)
        assert len(shared) >= 0.7 * template.size

    def test_perturb_empty_template_rejected(self):
        with pytest.raises(GraphError):
            perturb_graph(Graph(labels=[]), random.Random(0), alphabet=["C"])

    def test_family_dataset_graph_count(self):
        rng = random.Random(2)
        graphs = family_dataset_graphs(
            graph_count=10,
            template_count=3,
            template_order=15,
            order_spread=5,
            average_degree=2.2,
            alphabet=["C", "O"],
            rng=rng,
        )
        assert len(graphs) == 10
        assert all(g.graph_id == i for i, g in enumerate(graphs))

    def test_family_dataset_invalid_counts(self):
        with pytest.raises(GraphError):
            family_dataset_graphs(0, 1, 10, 2, 2.0, ["C"], random.Random(0))
        with pytest.raises(GraphError):
            family_dataset_graphs(5, 0, 10, 2, 2.0, ["C"], random.Random(0))


class TestStandInDatasets:
    def test_aids_like_shape(self):
        dataset = aids_like(scale=0.05)
        stats = dataset.statistics()
        assert stats.graph_count == 10
        assert stats.mean_degree == pytest.approx(2.1, abs=0.8)

    def test_pdbs_like_larger_graphs_than_aids(self):
        aids = aids_like(scale=0.05)
        pdbs = pdbs_like(scale=0.1)
        assert pdbs.statistics().mean_vertices > 2 * aids.statistics().mean_vertices

    def test_pcm_like_denser_than_aids(self):
        aids = aids_like(scale=0.05)
        pcm = pcm_like(scale=0.15)
        assert pcm.statistics().mean_degree > 2 * aids.statistics().mean_degree

    def test_synthetic_like_builds(self):
        dataset = synthetic_like(scale=0.1)
        assert len(dataset) >= 4

    def test_scale_controls_graph_count(self):
        assert len(aids_like(scale=0.1)) == 20
        assert len(aids_like(scale=0.05)) == 10

    def test_deterministic_given_seed(self):
        a = aids_like(scale=0.05, seed=3)
        b = aids_like(scale=0.05, seed=3)
        assert all(x == y for x, y in zip(a, b, strict=True))

    def test_dataset_by_name(self):
        dataset = dataset_by_name("AIDS", scale=0.05)
        assert dataset.name == "AIDS-like"

    def test_dataset_by_name_with_seed(self):
        a = dataset_by_name("pcm", scale=0.15, seed=1)
        b = dataset_by_name("pcm", scale=0.15, seed=1)
        assert all(x == y for x, y in zip(a, b, strict=True))

    def test_dataset_by_name_unknown(self):
        with pytest.raises(ValueError):
            dataset_by_name("enron")
