"""Unit tests for GraphBuilder."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs.builder import GraphBuilder


class TestAddVertex:
    def test_add_vertex_returns_sequential_ids(self):
        builder = GraphBuilder()
        assert builder.add_vertex("a", "C") == 0
        assert builder.add_vertex("b", "O") == 1
        assert builder.order == 2

    def test_duplicate_vertex_same_label_is_noop(self):
        builder = GraphBuilder()
        builder.add_vertex("a", "C")
        assert builder.add_vertex("a", "C") == 0
        assert builder.order == 1

    def test_duplicate_vertex_different_label_raises(self):
        builder = GraphBuilder()
        builder.add_vertex("a", "C")
        with pytest.raises(GraphError):
            builder.add_vertex("a", "O")

    def test_arbitrary_hashable_names(self):
        builder = GraphBuilder()
        builder.add_vertex(("atom", 3), "C")
        builder.add_vertex(frozenset({1}), "O")
        assert builder.order == 2

    def test_has_vertex(self):
        builder = GraphBuilder()
        builder.add_vertex("a", "C")
        assert builder.has_vertex("a")
        assert not builder.has_vertex("b")


class TestAddEdge:
    def test_add_edge(self):
        builder = GraphBuilder()
        builder.add_vertex("a", "C")
        builder.add_vertex("b", "O")
        builder.add_edge("a", "b")
        assert builder.size == 1
        assert builder.has_edge("a", "b")
        assert builder.has_edge("b", "a")

    def test_add_edge_unknown_endpoint(self):
        builder = GraphBuilder()
        builder.add_vertex("a", "C")
        with pytest.raises(GraphError):
            builder.add_edge("a", "missing")
        with pytest.raises(GraphError):
            builder.add_edge("missing", "a")

    def test_self_loop_rejected(self):
        builder = GraphBuilder()
        builder.add_vertex("a", "C")
        with pytest.raises(GraphError):
            builder.add_edge("a", "a")

    def test_duplicate_edge_ignored(self):
        builder = GraphBuilder()
        builder.add_vertex("a", "C")
        builder.add_vertex("b", "O")
        builder.add_edge("a", "b")
        builder.add_edge("b", "a")
        assert builder.size == 1

    def test_add_edges_bulk(self):
        builder = GraphBuilder()
        for name in "abc":
            builder.add_vertex(name, "C")
        builder.add_edges([("a", "b"), ("b", "c")])
        assert builder.size == 2

    def test_has_edge_with_unknown_vertices(self):
        builder = GraphBuilder()
        assert not builder.has_edge("x", "y")


class TestBuild:
    def test_build_produces_graph(self):
        builder = GraphBuilder(graph_id="mol-1")
        builder.add_vertex("a", "C")
        builder.add_vertex("b", "O")
        builder.add_edge("a", "b")
        graph = builder.build()
        assert graph.order == 2
        assert graph.size == 1
        assert graph.graph_id == "mol-1"
        assert graph.label(0) == "C"

    def test_build_with_override_id(self):
        builder = GraphBuilder(graph_id="x")
        builder.add_vertex("a", "C")
        assert builder.build(graph_id="y").graph_id == "y"

    def test_vertex_id_lookup(self):
        builder = GraphBuilder()
        builder.add_vertex("first", "C")
        builder.add_vertex("second", "N")
        assert builder.vertex_id("second") == 1
        with pytest.raises(GraphError):
            builder.vertex_id("third")

    def test_vertex_names_order(self):
        builder = GraphBuilder()
        builder.add_vertex("x", "C")
        builder.add_vertex("y", "O")
        assert builder.vertex_names() == ("x", "y")

    def test_builder_reusable_after_build(self):
        builder = GraphBuilder()
        builder.add_vertex("a", "C")
        first = builder.build()
        builder.add_vertex("b", "O")
        builder.add_edge("a", "b")
        second = builder.build()
        assert first.order == 1
        assert second.order == 2

    def test_repr(self):
        builder = GraphBuilder()
        builder.add_vertex("a", "C")
        assert "|V|=1" in repr(builder)
