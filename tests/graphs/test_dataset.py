"""Unit tests for GraphDataset."""

from __future__ import annotations

import pytest

from repro.exceptions import DatasetError
from repro.graphs.dataset import GraphDataset
from repro.graphs.graph import Graph


def _graphs():
    return [
        Graph(labels=["C", "O"], edges=[(0, 1)]),
        Graph(labels=["C", "C", "N"], edges=[(0, 1), (1, 2)]),
        Graph(labels=["S"]),
    ]


class TestConstruction:
    def test_empty_dataset_rejected(self):
        with pytest.raises(DatasetError):
            GraphDataset([], name="empty")

    def test_graph_ids_rewritten_to_positions(self):
        dataset = GraphDataset(_graphs(), name="d")
        assert [g.graph_id for g in dataset] == [0, 1, 2]

    def test_len_and_iteration(self):
        dataset = GraphDataset(_graphs())
        assert len(dataset) == 3
        assert [g.order for g in dataset] == [2, 3, 1]

    def test_name(self):
        assert GraphDataset(_graphs(), name="mols").name == "mols"

    def test_repr(self):
        assert "graphs=3" in repr(GraphDataset(_graphs(), name="mols"))


class TestAccess:
    def test_getitem(self):
        dataset = GraphDataset(_graphs())
        assert dataset[1].order == 3

    def test_graph_alias(self):
        dataset = GraphDataset(_graphs())
        assert dataset.graph(2).label(0) == "S"

    def test_out_of_range_raises(self):
        dataset = GraphDataset(_graphs())
        with pytest.raises(DatasetError):
            dataset[10]

    def test_graphs_bulk(self):
        dataset = GraphDataset(_graphs())
        graphs = dataset.graphs([2, 0])
        assert [g.graph_id for g in graphs] == [2, 0]

    def test_graph_ids(self):
        dataset = GraphDataset(_graphs())
        assert dataset.graph_ids == frozenset({0, 1, 2})


class TestStatistics:
    def test_statistics_values(self):
        dataset = GraphDataset(_graphs())
        stats = dataset.statistics()
        assert stats.graph_count == 3
        assert stats.max_vertices == 3
        assert stats.max_edges == 2
        assert stats.mean_vertices == pytest.approx(2.0)
        assert stats.distinct_labels == 4  # C, O, N, S

    def test_statistics_as_dict(self):
        stats = GraphDataset(_graphs()).statistics()
        payload = stats.as_dict()
        assert payload["graph_count"] == 3
        assert set(payload) >= {"mean_vertices", "mean_edges", "mean_degree"}

    def test_label_alphabet(self):
        dataset = GraphDataset(_graphs())
        assert dataset.label_alphabet() == frozenset({"C", "O", "N", "S"})

    def test_totals(self):
        dataset = GraphDataset(_graphs())
        assert dataset.total_vertices() == 6
        assert dataset.total_edges() == 3

    def test_single_graph_statistics(self):
        dataset = GraphDataset([Graph(labels=["C"])])
        stats = dataset.statistics()
        assert stats.std_vertices == 0.0
        assert stats.mean_degree == 0.0
