"""Tests for the packed (CSR) graph representation and its byte records.

The packed layer is a *redundant encoding* of ``Graph``: these tests pin the
round-trip identity Graph → PackedGraph → bytes → (mmap view) → Graph on
hand-picked edge cases and on random labelled graphs, including the sealed
arena re-open path — so any drift between the encodings fails loudly instead
of corrupting a cache that served its entries from an arena segment.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backends.arena import GraphArena
from repro.exceptions import GraphError
from repro.graphs.generators import random_connected_graph
from repro.graphs.graph import _CSR_SCALAR_CUTOFF, Graph
from repro.graphs.packed import INDEX_DTYPE, INDPTR_DTYPE, PackedGraph, pack_graphs

LABELS = ["C", "N", "O", "S"]

#: Every internal field that must survive the round-trip (``_hash`` is a
#: lazily-populated memo, not part of the graph's identity).
ROUNDTRIP_SLOTS = tuple(slot for slot in Graph.__slots__ if slot != "_hash")


def _random_graph(seed: int) -> Graph:
    rng = random.Random(seed)
    order = rng.randint(1, 24)
    return random_connected_graph(order, rng.uniform(1.5, 3.5), LABELS, rng)


def _big_graph(order: int = 160) -> Graph:
    """A graph above the scalar cutoff, exercising the vectorised mask path."""
    assert order > _CSR_SCALAR_CUTOFF
    rng = random.Random(7)
    return random_connected_graph(order, 2.5, LABELS, rng).with_id("big")


def assert_field_identical(rebuilt: Graph, original: Graph) -> None:
    for slot in ROUNDTRIP_SLOTS:
        assert getattr(rebuilt, slot) == getattr(original, slot), slot
    assert rebuilt == original and hash(rebuilt) == hash(original)


class TestGraphRoundTrip:
    @pytest.mark.parametrize(
        "graph",
        [
            Graph(labels=[], edges=(), graph_id="empty"),
            Graph(labels=["C"], edges=(), graph_id=0),
            Graph(labels=["C", "N", "C"], edges=[(0, 1), (1, 2), (0, 2)]),
            Graph(labels=["C", "O", "C", "O"], edges=()),  # no edges
        ],
        ids=["empty", "single-vertex", "triangle", "edgeless"],
    )
    def test_edge_cases(self, graph):
        packed = graph.to_packed()
        assert packed.order == graph.order
        assert packed.size == graph.size
        assert packed.labels() == graph.labels
        assert packed.graph_id == graph.graph_id
        assert_field_identical(packed.to_graph(), graph)

    def test_vectorised_mask_path_above_cutoff(self):
        graph = _big_graph()
        assert_field_identical(graph.to_packed().to_graph(), graph)

    def test_neighbors_are_sorted_zero_copy_slices(self):
        graph = _random_graph(11)
        packed = graph.to_packed()
        for vertex in graph.vertices():
            row = packed.neighbors(vertex)
            assert row.tolist() == sorted(graph.neighbors(vertex))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_graphs_round_trip(self, seed):
        graph = _random_graph(seed)
        assert_field_identical(graph.to_packed().to_graph(), graph)


class TestRecordLayout:
    def test_little_endian_dtypes(self):
        packed = _random_graph(3).to_packed()
        assert packed.indptr.dtype == INDPTR_DTYPE == np.dtype("<i8")
        assert packed.indices.dtype == INDEX_DTYPE == np.dtype("<i4")
        assert packed.label_codes.dtype == INDEX_DTYPE
        assert packed.degrees.dtype == INDEX_DTYPE

    def test_records_are_8_byte_aligned(self):
        for seed in range(8):
            payload = _random_graph(seed).to_packed().to_bytes()
            assert len(payload) % 8 == 0

    def test_packed_nbytes_matches_record_length(self):
        payload = _random_graph(5).to_packed().to_bytes()
        assert PackedGraph.packed_nbytes(payload) == len(payload)

    def test_bytes_round_trip(self):
        graph = _random_graph(17)
        packed = graph.to_packed()
        reopened = PackedGraph.from_bytes(packed.to_bytes())
        assert reopened == packed
        assert reopened.graph_id == packed.graph_id
        assert_field_identical(reopened.to_graph(), graph)

    def test_from_buffer_at_offset(self):
        graphs = [_random_graph(seed) for seed in (1, 2, 3)]
        records = pack_graphs(graphs)
        blob = b"".join(records)
        offset = 0
        for graph, record in zip(graphs, records):
            view = PackedGraph.from_buffer(blob, offset)
            assert_field_identical(view.to_graph(), graph)
            offset += len(record)

    def test_bad_magic_rejected(self):
        with pytest.raises(GraphError):
            PackedGraph.from_bytes(b"\x00" * 64)
        with pytest.raises(GraphError):
            PackedGraph.decode_graph(b"\x00" * 64)


class TestDecodeGraph:
    """``decode_graph`` is the struct fast path — same result, no numpy."""

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_matches_to_graph(self, seed):
        graph = _random_graph(seed)
        payload = graph.to_packed().to_bytes()
        assert_field_identical(PackedGraph.decode_graph(payload), graph)

    def test_vectorised_fallback_above_cutoff(self):
        graph = _big_graph()
        payload = graph.to_packed().to_bytes()
        assert_field_identical(PackedGraph.decode_graph(payload), graph)

    def test_edge_cases(self):
        for graph in (Graph(labels=[], edges=()), Graph(labels=["C"], graph_id=1)):
            payload = graph.to_packed().to_bytes()
            assert_field_identical(PackedGraph.decode_graph(payload), graph)


class TestImmutability:
    def test_attribute_writes_raise(self):
        packed = _random_graph(9).to_packed()
        with pytest.raises(AttributeError):
            packed.graph_id = "other"
        with pytest.raises(AttributeError):
            del packed.indptr

    def test_arrays_are_read_only(self):
        packed = _random_graph(9).to_packed()
        for array in (packed.indptr, packed.indices, packed.label_codes, packed.degrees):
            assert not array.flags.writeable
            with pytest.raises(ValueError):
                array[0] = 1

    def test_views_over_bytes_are_read_only(self):
        packed = PackedGraph.from_bytes(_random_graph(9).to_packed().to_bytes())
        assert not packed.indices.flags.writeable


class TestArenaRoundTrip:
    """Graph → arena record → sealed mmap view → Graph identity."""

    def test_seal_and_reattach(self, tmp_path):
        graphs = [_random_graph(seed).with_id(seed) for seed in range(12)]
        arena = GraphArena()
        extents = [arena.append_graph(graph) for graph in graphs]
        path = tmp_path / "graphs.arena"
        remap = arena.seal(extents, path)
        sealed_extents = [remap[extent.offset] for extent in extents]
        arena.close()

        reopened = GraphArena.attach(path)
        for graph, offset in zip(graphs, sealed_extents):
            extent = next(e for e in reopened.extents() if e.offset == offset)
            view = reopened.packed_at(extent)
            assert isinstance(view.indices, np.ndarray)
            assert not view.indices.flags.writeable
            assert_field_identical(view.to_graph(), graph)
            assert_field_identical(reopened.graph_at(extent), graph)
        reopened.close()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_graph_to_mmap_view_identity(self, tmp_path_factory, seed):
        graph = _random_graph(seed)
        arena = GraphArena()
        extent = arena.append_graph(graph)
        path = tmp_path_factory.mktemp("arena") / "one.arena"
        remap = arena.seal([extent], path)
        arena.close()
        reopened = GraphArena.attach(path)
        (sealed,) = reopened.extents()
        assert sealed.offset == remap[extent.offset]
        assert_field_identical(reopened.graph_at(sealed), graph)
        assert_field_identical(reopened.packed_at(sealed).to_graph(), graph)
        reopened.close()
