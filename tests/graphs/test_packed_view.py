"""CSR-native matching on PackedGraphView: answer and counter identity.

``PackedGraphView`` promises to be a drop-in ``Graph`` for the matchers —
not just the same answers but the *same search*: every matcher runs on the
interned bitmask core, so a view that materialises its core exactly like
``Graph.from_packed`` must produce identical ``nodes_expanded`` sequences.
These tests pin that oracle for all four matchers over randomized labelled
graphs (including the 0-node and single-vertex corners and views served
from a sealed arena), plus the lazy-adapter behaviours the serving path
leans on (no forced materialisation for hot reads, pickle round-trip, the
bounded label-table memo).
"""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.graphs.packed as packed_module
from repro.core.backends.arena import GraphArena
from repro.graphs.generators import random_connected_graph
from repro.graphs.graph import Graph
from repro.graphs.packed import PackedGraph, PackedGraphView, table_cache_evictions
from repro.isomorphism import available_matchers, matcher_by_name

LABELS = ["C", "N", "O", "S"]

MATCHERS = tuple(available_matchers())


def _random_graph(seed: int, max_order: int = 18) -> Graph:
    rng = random.Random(seed)
    order = rng.randint(1, max_order)
    return random_connected_graph(order, rng.uniform(1.5, 3.0), LABELS, rng)


def _view(graph: Graph) -> PackedGraphView:
    return PackedGraphView(graph.to_packed())


def _match_pair(matcher_name: str, pattern: Graph, target: Graph):
    """(matched, nodes_expanded) for plain Graphs and for packed views."""
    plain = matcher_by_name(matcher_name).match(pattern, target)
    viewed = matcher_by_name(matcher_name).match(_view(pattern), _view(target))
    return plain, viewed


class TestMatchIdentity:
    """Views answer exactly like the Graphs they wrap, work counters included."""

    @pytest.mark.parametrize("matcher_name", MATCHERS)
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_pairs(self, matcher_name, seed):
        rng = random.Random(seed)
        target = _random_graph(seed)
        # Half the examples draw an embedded pattern (forcing matches), the
        # other half an independent graph (mostly non-matches).
        if rng.random() < 0.5 and target.order > 1:
            keep = rng.sample(
                sorted(target.vertices()), rng.randint(1, target.order)
            )
            pattern = target.induced_subgraph(keep)
        else:
            pattern = _random_graph(seed + 1, max_order=6)
        plain, viewed = _match_pair(matcher_name, pattern, target)
        assert plain.matched == viewed.matched
        assert plain.nodes_expanded == viewed.nodes_expanded
        if plain.embedding is not None:
            assert viewed.embedding == plain.embedding

    @pytest.mark.parametrize("matcher_name", MATCHERS)
    def test_empty_pattern(self, matcher_name):
        empty = Graph(labels=(), edges=())
        target = _random_graph(3)
        plain, viewed = _match_pair(matcher_name, empty, target)
        assert plain.matched == viewed.matched
        assert plain.nodes_expanded == viewed.nodes_expanded

    @pytest.mark.parametrize("matcher_name", MATCHERS)
    def test_single_vertex(self, matcher_name):
        one = Graph(labels=("C",), edges=())
        for target in (one, _random_graph(5), Graph(labels=("N",), edges=())):
            plain, viewed = _match_pair(matcher_name, one, target)
            assert plain.matched == viewed.matched
            assert plain.nodes_expanded == viewed.nodes_expanded

    @pytest.mark.parametrize("matcher_name", MATCHERS)
    @pytest.mark.parametrize("seed", [0, 17, 4242, 9001])
    def test_sealed_arena_views(self, matcher_name, seed, tmp_path):
        """Views over a sealed (mmap-attached) arena match identically too."""
        target = _random_graph(seed)
        pattern = _random_graph(seed + 1, max_order=5)
        path = tmp_path / "graphs.arena"
        arena = GraphArena(path)
        extents = [arena.append_graph(pattern), arena.append_graph(target)]
        remap = arena.seal(extents)
        arena.close()
        attached = GraphArena.attach(path)
        try:
            sealed = [
                attached.view_at(type(e)(remap[e.offset], e.length))
                for e in extents
            ]
            plain = matcher_by_name(matcher_name).match(pattern, target)
            viewed = matcher_by_name(matcher_name).match(sealed[0], sealed[1])
            assert plain.matched == viewed.matched
            assert plain.nodes_expanded == viewed.nodes_expanded
        finally:
            attached.close()


class TestViewAdapter:
    """The lazy-adapter contract the zero-decode serving path relies on."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_view_equals_decoded_graph(self, seed):
        graph = _random_graph(seed)
        view = _view(graph)
        assert view == graph
        assert hash(view) == hash(graph)
        assert view.order == graph.order
        assert view.size == graph.size
        assert sorted(view.vertices()) == sorted(graph.vertices())
        for vertex in graph.vertices():
            assert view.label(vertex) == graph.label(vertex)
            assert view.degree(vertex) == graph.degree(vertex)

    def test_hot_reads_do_not_materialise(self):
        view = _view(_random_graph(11))
        view.order, view.size, view.degree(0), view.label(0)
        view.has_edge(0, 1), view.full_vertex_mask, list(view.vertices())
        for field in ("_adjacency", "_neighbor_masks", "_labels", "_edges"):
            assert field not in dir(view) or not _slot_is_set(view, field)

    def test_pickle_roundtrip(self):
        graph = _random_graph(13)
        view = _view(graph)
        clone = pickle.loads(pickle.dumps(view))
        assert isinstance(clone, PackedGraphView)
        assert clone == graph

    def test_to_packed_is_free(self):
        packed = _random_graph(17).to_packed()
        assert PackedGraphView(packed).to_packed() is packed


def _slot_is_set(view, name: str) -> bool:
    try:
        object.__getattribute__(view, name)
    except AttributeError:
        return False
    return True


class TestLabelTableMemo:
    """The decode-side label-table memo is bounded (regression: PR 8)."""

    def test_lru_cap_evicts(self, monkeypatch):
        monkeypatch.setattr(packed_module, "_TABLE_CACHE_MAX", 4)
        packed_module._TABLE_CACHE.clear()
        before = table_cache_evictions()
        records = []
        for index in range(12):
            graph = Graph(labels=(f"L{index}", f"M{index}"), edges=((0, 1),))
            records.append(graph.to_packed().to_bytes())
        for payload in records:
            PackedGraph.decode_graph(payload)
        assert len(packed_module._TABLE_CACHE) <= 4
        assert table_cache_evictions() - before >= 8

    def test_repeat_decode_hits_memo(self, monkeypatch):
        monkeypatch.setattr(packed_module, "_TABLE_CACHE_MAX", 4)
        packed_module._TABLE_CACHE.clear()
        payload = Graph(labels=("C", "N"), edges=((0, 1),)).to_packed().to_bytes()
        PackedGraph.decode_graph(payload)
        before = table_cache_evictions()
        for _ in range(20):
            PackedGraph.decode_graph(payload)
        assert table_cache_evictions() == before
