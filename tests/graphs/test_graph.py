"""Unit tests for the core Graph type."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs.graph import _LABEL_INTERN, Graph, intern_label


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(labels=[], edges=[])
        assert g.order == 0
        assert g.size == 0
        assert list(g.vertices()) == []

    def test_single_vertex(self):
        g = Graph(labels=["C"])
        assert g.order == 1
        assert g.size == 0
        assert g.label(0) == "C"

    def test_basic_graph(self, path_graph):
        assert path_graph.order == 4
        assert path_graph.size == 3
        assert path_graph.labels == ("C", "C", "O", "N")

    def test_edges_are_canonicalised(self):
        g = Graph(labels=["C", "O"], edges=[(1, 0)])
        assert g.edges == ((0, 1),)

    def test_edge_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            Graph(labels=["C"], edges=[(0, 1)])

    def test_negative_vertex_rejected(self):
        with pytest.raises(GraphError):
            Graph(labels=["C", "O"], edges=[(-1, 0)])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(labels=["C", "O"], edges=[(1, 1)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphError):
            Graph(labels=["C", "O"], edges=[(0, 1), (1, 0)])

    def test_graph_id_recorded(self):
        g = Graph(labels=["C"], graph_id=42)
        assert g.graph_id == 42

    def test_graph_id_defaults_to_none(self):
        assert Graph(labels=["C"]).graph_id is None


class TestAccessors:
    def test_neighbors(self, path_graph):
        assert set(path_graph.neighbors(1)) == {0, 2}
        assert set(path_graph.neighbors(0)) == {1}

    def test_degree(self, star_graph):
        assert star_graph.degree(0) == 3
        assert star_graph.degree(1) == 1

    def test_has_edge_both_directions(self, path_graph):
        assert path_graph.has_edge(0, 1)
        assert path_graph.has_edge(1, 0)
        assert not path_graph.has_edge(0, 3)

    def test_has_vertex(self, path_graph):
        assert path_graph.has_vertex(0)
        assert path_graph.has_vertex(3)
        assert not path_graph.has_vertex(4)
        assert not path_graph.has_vertex(-1)

    def test_len_and_iter(self, path_graph):
        assert len(path_graph) == 4
        assert list(path_graph) == [0, 1, 2, 3]

    def test_label_histogram(self, star_graph):
        assert star_graph.label_histogram == {"C": 1, "O": 3}

    def test_label_count(self, star_graph):
        assert star_graph.label_count("O") == 3
        assert star_graph.label_count("N") == 0

    def test_distinct_labels(self, path_graph):
        assert path_graph.distinct_labels() == frozenset({"C", "O", "N"})

    def test_vertices_with_label(self, star_graph):
        assert star_graph.vertices_with_label("O") == (1, 2, 3)
        assert star_graph.vertices_with_label("X") == ()


class TestStructuralSummaries:
    def test_degree_sequence_sorted(self, star_graph):
        assert star_graph.degree_sequence() == (3, 1, 1, 1)

    def test_average_degree(self, path_graph):
        assert path_graph.average_degree() == pytest.approx(2 * 3 / 4)

    def test_average_degree_empty(self):
        assert Graph(labels=[]).average_degree() == 0.0

    def test_density_triangle(self, triangle):
        assert triangle.density() == pytest.approx(1.0)

    def test_density_single_vertex(self):
        assert Graph(labels=["C"]).density() == 0.0

    def test_connected_path(self, path_graph):
        assert path_graph.is_connected()

    def test_disconnected_graph(self):
        g = Graph(labels=["C", "C", "O"], edges=[(0, 1)])
        assert not g.is_connected()
        components = g.connected_components()
        assert sorted(map(len, components)) == [1, 2]

    def test_empty_graph_is_connected(self):
        assert Graph(labels=[]).is_connected()

    def test_connected_components_cover_all_vertices(self, random_molecule):
        components = random_molecule.connected_components()
        covered = sorted(v for component in components for v in component)
        assert covered == list(range(random_molecule.order))


class TestLabelMasks:
    def test_label_mask_delegates_to_label_id_mask(self):
        g = Graph(labels=["C", "N", "C"], edges=[(0, 1), (1, 2)])
        assert g.label_mask("C") == g.label_id_mask(intern_label("C")) == 0b101
        assert g.label_mask("N") == g.label_id_mask(intern_label("N")) == 0b010

    def test_label_mask_unknown_label_does_not_intern(self):
        g = Graph(labels=["C"], edges=())
        probe = ("never-interned-label", object())
        before = len(_LABEL_INTERN)
        assert g.label_mask(probe) == 0
        assert len(_LABEL_INTERN) == before


class TestDerivedGraphs:
    def test_with_id_preserves_structure(self, triangle):
        clone = triangle.with_id(7)
        assert clone.graph_id == 7
        assert clone == triangle

    def test_with_id_copies_every_slot(self, triangle):
        """``with_id`` iterates ``Graph.__slots__`` — a field added to the
        class can never silently fall off the clone path."""
        clone = triangle.with_id("cloned")
        for slot in Graph.__slots__:
            if slot == "_graph_id":
                continue
            assert getattr(clone, slot) == getattr(triangle, slot), slot

    def test_induced_subgraph(self, house_graph):
        sub = house_graph.induced_subgraph([2, 3, 4])
        assert sub.order == 3
        assert sub.size == 3  # the triangular roof

    def test_induced_subgraph_unknown_vertex(self, triangle):
        with pytest.raises(GraphError):
            triangle.induced_subgraph([0, 9])

    def test_edge_subgraph(self, house_graph):
        sub = house_graph.edge_subgraph([(0, 1), (1, 2)])
        assert sub.order == 3
        assert sub.size == 2

    def test_edge_subgraph_unknown_edge(self, triangle):
        with pytest.raises(GraphError):
            triangle.edge_subgraph([(0, 5)])

    def test_relabelled(self, path_graph):
        relabelled = path_graph.relabelled({0: "X", 3: "Y"})
        assert relabelled.label(0) == "X"
        assert relabelled.label(3) == "Y"
        assert relabelled.label(1) == "C"
        assert relabelled.edges == path_graph.edges

    def test_relabelled_unknown_vertex(self, path_graph):
        with pytest.raises(GraphError):
            path_graph.relabelled({9: "X"})


class TestEqualityAndHashing:
    def test_equal_graphs(self):
        a = Graph(labels=["C", "O"], edges=[(0, 1)])
        b = Graph(labels=["C", "O"], edges=[(0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_graph_id_does_not_affect_equality(self):
        a = Graph(labels=["C", "O"], edges=[(0, 1)], graph_id=1)
        b = Graph(labels=["C", "O"], edges=[(0, 1)], graph_id=2)
        assert a == b

    def test_different_labels_not_equal(self):
        a = Graph(labels=["C", "O"], edges=[(0, 1)])
        b = Graph(labels=["C", "N"], edges=[(0, 1)])
        assert a != b

    def test_different_edges_not_equal(self):
        a = Graph(labels=["C", "O", "N"], edges=[(0, 1)])
        b = Graph(labels=["C", "O", "N"], edges=[(1, 2)])
        assert a != b

    def test_not_equal_to_other_types(self, triangle):
        assert triangle != "triangle"

    def test_usable_as_dict_key(self, triangle, path_graph):
        mapping = {triangle: 1, path_graph: 2}
        assert mapping[Graph(labels=["C", "C", "O"], edges=[(0, 1), (1, 2), (0, 2)])] == 1

    def test_repr_contains_counts(self, path_graph):
        assert "|V|=4" in repr(path_graph)
        assert "|E|=3" in repr(path_graph)

    def test_structure_key_roundtrip(self, path_graph):
        labels, edges = path_graph.structure_key()
        assert Graph(labels=labels, edges=edges) == path_graph
