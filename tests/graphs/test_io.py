"""Unit tests for transaction-format graph I/O."""

from __future__ import annotations

import io

import pytest

from repro.exceptions import GraphFormatError
from repro.graphs.io import (
    graph_from_text,
    graph_to_text,
    load_dataset,
    read_transaction_text,
    save_dataset,
    write_transaction_text,
)

SAMPLE = """
t # 0
v 0 C
v 1 O
e 0 1
t # 1
v 0 N
% a comment
// another comment
"""


class TestParsing:
    def test_parse_two_graphs(self):
        graphs = read_transaction_text(SAMPLE)
        assert len(graphs) == 2
        assert graphs[0].order == 2 and graphs[0].size == 1
        assert graphs[1].order == 1 and graphs[1].size == 0

    def test_graph_ids_from_header(self):
        graphs = read_transaction_text(SAMPLE)
        assert graphs[0].graph_id == "0"
        assert graphs[1].graph_id == "1"

    def test_parse_from_stream(self):
        graphs = read_transaction_text(io.StringIO(SAMPLE))
        assert len(graphs) == 2

    def test_vertex_before_t_rejected(self):
        with pytest.raises(GraphFormatError):
            read_transaction_text("v 0 C\n")

    def test_edge_before_t_rejected(self):
        with pytest.raises(GraphFormatError):
            read_transaction_text("e 0 1\n")

    def test_non_consecutive_vertex_ids_rejected(self):
        with pytest.raises(GraphFormatError):
            read_transaction_text("t # 0\nv 1 C\n")

    def test_malformed_vertex_rejected(self):
        with pytest.raises(GraphFormatError):
            read_transaction_text("t # 0\nv 0\n")

    def test_malformed_edge_rejected(self):
        with pytest.raises(GraphFormatError):
            read_transaction_text("t # 0\nv 0 C\ne 0\n")

    def test_unknown_record_rejected(self):
        with pytest.raises(GraphFormatError):
            read_transaction_text("x nonsense\n")

    def test_invalid_edge_target_reported_with_graph(self):
        with pytest.raises(GraphFormatError):
            read_transaction_text("t # 9\nv 0 C\ne 0 5\n")


class TestRoundTrip:
    def test_single_graph_round_trip(self, path_graph):
        text = graph_to_text(path_graph)
        parsed = graph_from_text(text)
        assert parsed == path_graph

    def test_graph_from_text_requires_single_graph(self):
        with pytest.raises(GraphFormatError):
            graph_from_text(SAMPLE)

    def test_write_read_stream_round_trip(self, triangle, star_graph):
        buffer = io.StringIO()
        write_transaction_text([triangle, star_graph], buffer)
        parsed = read_transaction_text(buffer.getvalue())
        assert parsed[0] == triangle
        assert parsed[1] == star_graph

    def test_dataset_round_trip(self, tmp_path, handmade_dataset):
        path = tmp_path / "data.txt"
        save_dataset(handmade_dataset, path)
        loaded = load_dataset(path, name="reloaded")
        assert len(loaded) == len(handmade_dataset)
        assert loaded.name == "reloaded"
        for original, restored in zip(handmade_dataset, loaded, strict=True):
            assert original == restored

    def test_load_dataset_default_name(self, tmp_path, handmade_dataset):
        path = tmp_path / "molecules.txt"
        save_dataset(handmade_dataset, path)
        assert load_dataset(path).name == "molecules"

    def test_load_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        with pytest.raises(GraphFormatError):
            load_dataset(path)
