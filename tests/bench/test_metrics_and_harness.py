"""Tests for the benchmark metrics, harness and reporting helpers."""

from __future__ import annotations

import pytest

from repro.bench.harness import run_baseline, run_cached, run_experiment
from repro.bench.metrics import aggregate_baseline, aggregate_cached, speedup
from repro.bench.reporting import format_series, format_table, print_figure, print_table
from repro.core.config import GraphCacheConfig
from repro.exceptions import BenchmarkError
from repro.methods import SIMethod, execute_query
from repro.workloads import generate_type_a


@pytest.fixture(scope="module")
def experiment_parts(tiny_dataset):
    method = SIMethod(tiny_dataset, matcher="vf2plus")
    workload = generate_type_a(tiny_dataset, "ZZ", 20, query_sizes=(3, 5), seed=3)
    return method, workload


class TestAggregates:
    def test_aggregate_baseline(self, experiment_parts):
        method, workload = experiment_parts
        executions = [execute_query(method, q) for q in workload]
        aggregate = aggregate_baseline(executions)
        assert aggregate.query_count == len(workload)
        assert aggregate.avg_subiso_tests == pytest.approx(len(method.dataset))
        assert aggregate.total_time_s >= aggregate.avg_time_s
        assert set(aggregate.as_dict()) >= {"avg_time_s", "avg_subiso_tests"}

    def test_aggregate_cached(self, experiment_parts):
        method, workload = experiment_parts
        _, results = run_cached(
            method, workload, GraphCacheConfig(cache_capacity=5, window_size=2)
        )
        aggregate = aggregate_cached(results)
        assert aggregate.query_count == len(results)
        assert 0.0 <= aggregate.cache_hit_rate <= 1.0

    def test_empty_run_rejected(self):
        with pytest.raises(ValueError):
            aggregate_baseline([])
        with pytest.raises(ValueError):
            aggregate_cached([])

    def test_speedup_ratios(self, experiment_parts):
        method, workload = experiment_parts
        executions = [execute_query(method, q) for q in workload]
        baseline = aggregate_baseline(executions)
        _, results = run_cached(
            method, workload, GraphCacheConfig(cache_capacity=5, window_size=2)
        )
        report = speedup(baseline, aggregate_cached(results))
        assert report.time_speedup > 0
        assert report.subiso_speedup >= 1.0  # the cache never adds sub-iso tests
        assert report.as_dict()["subiso_speedup"] == pytest.approx(report.subiso_speedup)


class TestHarness:
    def test_run_baseline_warmup_skipped(self, experiment_parts):
        method, workload = experiment_parts
        executions = run_baseline(method, workload, warmup_queries=5)
        assert len(executions) == len(workload) - 5

    def test_run_baseline_warmup_too_large(self, experiment_parts):
        method, workload = experiment_parts
        with pytest.raises(BenchmarkError):
            run_baseline(method, workload, warmup_queries=len(workload))

    def test_run_cached_returns_cache_and_results(self, experiment_parts):
        method, workload = experiment_parts
        cache, results = run_cached(
            method, workload, GraphCacheConfig(cache_capacity=5, window_size=5)
        )
        assert len(results) == len(workload) - 5  # one warm-up window by default
        assert cache.runtime_statistics.queries_processed == len(workload)

    def test_run_cached_warmup_too_large(self, experiment_parts):
        method, workload = experiment_parts
        with pytest.raises(BenchmarkError):
            run_cached(method, workload, warmup_queries=len(workload))

    def test_run_experiment_end_to_end(self, experiment_parts):
        method, workload = experiment_parts
        result = run_experiment(
            "unit-test",
            method,
            workload,
            GraphCacheConfig(cache_capacity=5, window_size=2),
        )
        assert result.name == "unit-test"
        assert result.method_name == method.name
        assert result.subiso_speedup >= 1.0
        row = result.summary_row()
        assert row["experiment"] == "unit-test"
        assert row["config"] == "c5-b2"

    def test_run_experiment_with_shared_baseline(self, experiment_parts):
        method, workload = experiment_parts
        config = GraphCacheConfig(cache_capacity=5, window_size=2)
        baseline = run_baseline(method, workload, warmup_queries=2)
        result = run_experiment(
            "shared", method, workload, config, baseline_executions=baseline
        )
        assert result.speedups.baseline.query_count == len(baseline)

    def test_experiment_answers_match_baseline(self, experiment_parts):
        """The harness itself must preserve the no-false-results guarantee."""
        method, workload = experiment_parts
        config = GraphCacheConfig(cache_capacity=5, window_size=2, warmup_windows=0)
        result = run_experiment("answers", method, workload, config)
        for execution, cached in zip(result.baseline_executions, result.cached_results, strict=True):
            assert execution.answer_ids == cached.answer_ids


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_explicit_columns(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_series(self):
        series = {"ctindex": {"ZZ": 3.43, "UU": 1.29}, "ggsx": {"ZZ": 5.72}}
        text = format_series(series)
        assert "ctindex" in text and "ZZ" in text
        assert "3.43" in text
        assert "-" in text  # missing ggsx UU value

    def test_format_series_empty(self):
        assert format_series({}) == "(no series)"

    def test_print_helpers_do_not_crash(self, capsys):
        print_table([{"a": 1}], title="demo")
        print_figure("Figure 0", "demo figure", {"s": {"x": 1.0}}, note="a note")
        captured = capsys.readouterr().out
        assert "demo" in captured and "Figure 0" in captured and "a note" in captured
