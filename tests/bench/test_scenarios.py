"""Tests for the benchmark scenario registry (cached datasets/methods/workloads)."""

from __future__ import annotations


from repro.bench.scenarios import (
    BENCH_DATASET_SCALES,
    BENCH_QUERY_COUNTS,
    BENCH_QUERY_SIZES,
    bench_config,
    get_dataset,
    get_method,
    type_a_workload,
)


class TestScenarioTables:
    def test_every_dataset_has_all_parameters(self):
        assert set(BENCH_DATASET_SCALES) == set(BENCH_QUERY_COUNTS) == set(BENCH_QUERY_SIZES)
        assert set(BENCH_DATASET_SCALES) == {"aids", "pdbs", "pcm", "synthetic"}

    def test_bench_config_defaults(self):
        config = bench_config()
        assert config.cache_capacity == 30
        assert config.window_size == 10
        assert config.replacement_policy == "hd"
        assert config.warmup_windows == 1

    def test_bench_config_overrides(self):
        config = bench_config(policy="pin", cache_capacity=90, admission_control=True)
        assert config.replacement_policy == "pin"
        assert config.cache_capacity == 90
        assert config.admission_control


class TestCachedBuilders:
    def test_get_dataset_memoised(self):
        assert get_dataset("aids") is get_dataset("aids")

    def test_get_method_memoised(self):
        assert get_method("aids", "vf2plus") is get_method("aids", "vf2plus")

    def test_dense_dataset_uses_shorter_paths(self):
        method = get_method("pcm", "grapes6")
        assert method.max_path_length == 3
        assert method.verify_parallelism == 6

    def test_sparse_dataset_uses_default_paths(self):
        method = get_method("aids", "ggsx")
        assert method.max_path_length == 4

    def test_type_a_workload_size_and_memoisation(self):
        workload = type_a_workload("aids", "ZZ", query_count=12, seed=3)
        assert len(workload) == 12
        assert type_a_workload("aids", "ZZ", query_count=12, seed=3) is workload
