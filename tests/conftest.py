"""Shared fixtures for the test suite.

The fixtures provide small, deterministic graphs and datasets so that tests
exercising NP-complete machinery (sub-iso, FTV filtering, the cache) stay
fast.  Session-scoped fixtures are used for anything whose construction is
not free (datasets, FTV indexes, query pools).
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.graphs.dataset import GraphDataset
from repro.graphs.generators import aids_like, pcm_like, random_connected_graph
from repro.graphs.graph import Graph


def pytest_collection_modifyitems(items):
    """Auto-apply the ``concurrency`` marker to the concurrency test modules.

    The dedicated CI concurrency job selects these with ``-m concurrency``
    without having to know file names; everything in a ``*concurrency*``
    module gets the marker.
    """
    for item in items:
        if "concurrency" in Path(str(item.fspath)).name:
            item.add_marker(pytest.mark.concurrency)


@pytest.fixture
def triangle() -> Graph:
    """A labelled triangle: C-C-O."""
    return Graph(labels=["C", "C", "O"], edges=[(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path_graph() -> Graph:
    """A 4-vertex labelled path: C-C-O-N."""
    return Graph(labels=["C", "C", "O", "N"], edges=[(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def star_graph() -> Graph:
    """A star with a C centre and three O leaves."""
    return Graph(labels=["C", "O", "O", "O"], edges=[(0, 1), (0, 2), (0, 3)])


@pytest.fixture
def house_graph() -> Graph:
    """A 5-vertex "house": a square with a triangular roof, all carbons."""
    return Graph(
        labels=["C"] * 5,
        edges=[(0, 1), (1, 2), (2, 3), (3, 0), (3, 4), (2, 4)],
    )


def make_molecule(seed: int = 0, order: int = 12, degree: float = 2.2) -> Graph:
    """Helper producing a random connected molecule-like graph."""
    rng = random.Random(seed)
    return random_connected_graph(
        order=order,
        average_degree=degree,
        alphabet=["C", "N", "O", "S"],
        rng=rng,
    )


@pytest.fixture
def random_molecule() -> Graph:
    """A deterministic 12-vertex molecule-like graph."""
    return make_molecule(seed=3)


@pytest.fixture(scope="session")
def tiny_dataset() -> GraphDataset:
    """A 12-graph AIDS-like dataset for fast cache/FTV tests."""
    return aids_like(scale=0.06, seed=5)


@pytest.fixture(scope="session")
def small_dataset() -> GraphDataset:
    """A 30-graph AIDS-like dataset for integration tests."""
    return aids_like(scale=0.15, seed=9)


@pytest.fixture(scope="session")
def dense_dataset() -> GraphDataset:
    """A small dense PCM-like dataset (for admission-control tests)."""
    return pcm_like(scale=0.15, seed=13)


@pytest.fixture
def handmade_dataset() -> GraphDataset:
    """A tiny hand-made dataset with known containment structure.

    * graph 0: a C-C-O triangle with a pendant N,
    * graph 1: a C-C-O-N path,
    * graph 2: a 6-cycle of alternating C/O with a pendant N,
    * graph 3: a single C-C edge.
    """
    g0 = Graph(labels=["C", "C", "O", "N"], edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
    g1 = Graph(labels=["C", "C", "O", "N"], edges=[(0, 1), (1, 2), (2, 3)])
    g2 = Graph(
        labels=["C", "O", "C", "O", "C", "O", "N"],
        edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 6)],
    )
    g3 = Graph(labels=["C", "C"], edges=[(0, 1)])
    return GraphDataset([g0, g1, g2, g3], name="handmade")
