"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli.main import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_command_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "aids"])
        assert args.method == "ggsx"
        assert args.policy == "hd"
        assert args.cache_size == 30

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dataset", "imdb"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert "ggsx" in output and "vf2" in output and "hd" in output

    def test_dataset_stats_and_save(self, capsys, tmp_path):
        output_path = tmp_path / "aids.txt"
        code = main(["dataset", "aids", "--scale", "0.05", "--seed", "3",
                     "--output", str(output_path)])
        assert code == 0
        assert output_path.exists()
        output = capsys.readouterr().out
        assert "graph_count" in output
        assert "saved 10 graphs" in output

    def test_workload_generation(self, capsys, tmp_path):
        output_path = tmp_path / "workload.json"
        code = main([
            "workload", "aids", "--scale", "0.05", "--kind", "ZZ",
            "--queries", "8", "--sizes", "3", "5", "--seed", "2",
            "--output", str(output_path),
        ])
        assert code == 0
        assert output_path.exists()
        assert "saved workload" in capsys.readouterr().out

    def test_run_experiment(self, capsys, tmp_path):
        workload_path = tmp_path / "workload.json"
        main([
            "workload", "aids", "--scale", "0.06", "--kind", "ZZ",
            "--queries", "25", "--sizes", "3", "5", "--seed", "2",
            "--output", str(workload_path),
        ])
        capsys.readouterr()
        code = main([
            "run", "aids", "--scale", "0.06", "--method", "vf2plus",
            "--workload", str(workload_path), "--cache-size", "5",
            "--window-size", "3", "--seed", "2",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "time_speedup" in output

    def test_policies_comparison(self, capsys):
        code = main([
            "policies", "aids", "--scale", "0.06", "--method", "vf2plus",
            "--queries", "25", "--cache-size", "5", "--window-size", "3",
            "--seed", "4",
        ])
        assert code == 0
        output = capsys.readouterr().out
        for policy in ("LRU", "POP", "PIN", "PINC", "HD"):
            assert policy in output


class TestMaintenanceCommand:
    def test_maintenance_mode_flag_parses(self):
        args = build_parser().parse_args(
            ["run", "aids", "--maintenance-mode", "background"]
        )
        assert args.maintenance_mode == "background"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "aids", "--maintenance-mode", "eager"])

    def test_maintenance_run_prints_rounds(self, capsys):
        code = main([
            "maintenance", "aids", "--scale", "0.06", "--method", "vf2plus",
            "--queries", "25", "--cache-size", "5", "--window-size", "3",
            "--seed", "2", "--maintenance-mode", "background", "--serials",
        ])
        assert code == 0
        output = capsys.readouterr().out
        for column in ("round", "admitted", "evicted", "policy", "index_ops"):
            assert column in output
        assert "round 1: admitted" in output

    def test_maintenance_inspects_journal_file(self, capsys, tmp_path):
        journal_path = tmp_path / "plans.jsonl"
        code = main([
            "run", "aids", "--scale", "0.06", "--method", "vf2plus",
            "--queries", "25", "--cache-size", "5", "--window-size", "3",
            "--seed", "2", "--maintenance-mode", "barrier",
            "--journal-path", str(journal_path),
        ])
        assert code == 0
        assert journal_path.exists()
        capsys.readouterr()
        code = main(["maintenance", "--journal", str(journal_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "round" in output and "policy" in output

    def test_maintenance_without_dataset_or_journal_errors(self, capsys):
        code = main(["maintenance"])
        assert code == 2
        assert "provide a dataset" in capsys.readouterr().err


class TestMaintenanceJournalRobustness:
    """``maintenance --journal`` on missing / empty / damaged journal files."""

    @staticmethod
    def _record_line(serial: int) -> str:
        import json

        from repro.core.policies.plan import MaintenancePlan

        plan = MaintenancePlan(
            current_serial=serial,
            window_serials=(serial - 1, serial),
            admitted_serials=(serial,),
            rejected_serials=(serial - 1,),
            evicted_serials=(),
            policy="hd",
        )
        return json.dumps(plan.to_record(), sort_keys=True)

    def test_missing_journal_file_is_a_clear_error(self, capsys, tmp_path):
        code = main(["maintenance", "--journal", str(tmp_path / "absent.jsonl")])
        assert code == 2
        err = capsys.readouterr().err
        assert "journal file not found" in err and "absent.jsonl" in err

    def test_empty_journal_file_reports_no_rounds(self, capsys, tmp_path):
        journal_path = tmp_path / "empty.jsonl"
        journal_path.write_text("")
        assert main(["maintenance", "--journal", str(journal_path)]) == 0
        assert "empty journal" in capsys.readouterr().out

    def test_truncated_last_line_is_skipped(self, capsys, tmp_path):
        journal_path = tmp_path / "torn.jsonl"
        journal_path.write_text(
            self._record_line(2) + "\n"
            + self._record_line(4) + "\n"
            + '{"current_serial": 6, "window_se'  # crash mid-append
        )
        assert main(["maintenance", "--journal", str(journal_path)]) == 0
        output = capsys.readouterr().out
        assert output.count("hd") == 2  # both complete rounds decoded

    def test_corrupt_middle_line_is_rejected_with_line_number(
        self, capsys, tmp_path
    ):
        journal_path = tmp_path / "corrupt.jsonl"
        journal_path.write_text(
            self._record_line(2) + "\n"
            + "definitely not json\n"
            + self._record_line(4) + "\n"
        )
        assert main(["maintenance", "--journal", str(journal_path)]) == 2
        err = capsys.readouterr().err
        assert "line 2" in err and "journal record" in err


class TestCompactionOutput:
    def test_compaction_threshold_flag_parses(self):
        args = build_parser().parse_args(
            ["batch", "aids", "--compaction-threshold", "0.25"]
        )
        assert args.compaction_threshold == 0.25
        assert build_parser().parse_args(["batch", "aids"]).compaction_threshold is None

    def test_maintenance_surfaces_compaction_events(self, capsys, tmp_path):
        code = main([
            "maintenance", "aids", "--scale", "0.05", "--queries", "60",
            "--cache-size", "10", "--window-size", "5",
            "--backend", "mmap", "--backend-path", str(tmp_path / "m.db"),
            "--compaction-threshold", "0.001",
        ])
        assert code == 0
        output = capsys.readouterr().out
        # Per-segment occupancy and the fold report ride together.
        assert "arena cache_entries:" in output
        assert "compaction:" in output and "fold(s)" in output
        assert "trigger_ratio=" in output
        assert "bytes_reclaimed=" in output
        assert "segments_folded=" in output

    def test_batch_multiprocess_surfaces_compaction_events(self, capsys, tmp_path):
        code = main([
            "batch", "aids", "--scale", "0.05", "--queries", "60",
            "--cache-size", "10", "--window-size", "5", "--workers", "2",
            "--backend", "mmap", "--backend-path", str(tmp_path / "b.db"),
            "--compaction-threshold", "0.001",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "arena: live_bytes=" in output
        assert "compaction:" in output
        assert "trigger_ratio=" in output

    def test_no_threshold_prints_no_compaction_lines(self, capsys, tmp_path):
        code = main([
            "maintenance", "aids", "--scale", "0.05", "--queries", "40",
            "--cache-size", "10", "--window-size", "5",
            "--backend", "mmap", "--backend-path", str(tmp_path / "m.db"),
        ])
        assert code == 0
        assert "compaction:" not in capsys.readouterr().out
