"""Tests for SI methods, the Method registry and the baseline query executor."""

from __future__ import annotations

import pytest

from repro.exceptions import BenchmarkError
from repro.graphs.graph import Graph
from repro.isomorphism import VF2PlusMatcher
from repro.methods import (
    SIMethod,
    available_methods,
    execute_query,
    method_by_name,
    register_method,
    verify_candidates,
)

MATCHER = VF2PlusMatcher()


def brute_force_answer(dataset, query):
    return frozenset(
        graph.graph_id for graph in dataset if MATCHER.is_subgraph(query, graph)
    )


class TestSIMethod:
    def test_candidates_are_whole_dataset(self, handmade_dataset):
        method = SIMethod(handmade_dataset, matcher="vf2")
        query = Graph(labels=["C", "C"], edges=[(0, 1)])
        assert method.candidates(query) == handmade_dataset.graph_ids

    def test_prefilter_drops_impossible(self, handmade_dataset):
        method = SIMethod(handmade_dataset, matcher="vf2", prefilter=True)
        query = Graph(labels=["C", "C", "O"], edges=[(0, 1), (1, 2)])
        candidates = method.candidates(query)
        assert 3 not in candidates  # graph 3 has only 2 vertices
        assert brute_force_answer(handmade_dataset, query) <= candidates

    def test_matcher_by_string_name(self, handmade_dataset):
        method = SIMethod(handmade_dataset, matcher="graphql")
        assert method.matcher.name == "graphql"
        assert method.name == "si-graphql"

    def test_matcher_instance_accepted(self, handmade_dataset):
        method = SIMethod(handmade_dataset, matcher=VF2PlusMatcher())
        assert method.matcher.name == "vf2plus"

    def test_index_size_zero(self, handmade_dataset):
        assert SIMethod(handmade_dataset).index_size_bytes() == 0

    def test_supports_supergraph(self, handmade_dataset):
        assert SIMethod(handmade_dataset).supports_supergraph

    def test_verify_single_graph(self, handmade_dataset):
        method = SIMethod(handmade_dataset, matcher="vf2plus")
        query = Graph(labels=["C", "C"], edges=[(0, 1)])
        record = method.verify(query, 0)
        assert record.matched
        assert record.graph_id == 0
        assert record.elapsed_s >= 0.0

    def test_verify_supergraph_direction(self, handmade_dataset):
        method = SIMethod(handmade_dataset, matcher="vf2plus")
        # Query that *contains* graph 3 (the single C-C edge).
        query = Graph(labels=["C", "C", "C"], edges=[(0, 1), (1, 2)])
        assert method.verify_supergraph(query, 3).matched
        assert not method.verify_supergraph(query, 2).matched


class TestExecuteQuery:
    def test_answers_match_brute_force(self, handmade_dataset):
        method = SIMethod(handmade_dataset, matcher="vf2plus")
        query = Graph(labels=["C", "C", "O"], edges=[(0, 1), (1, 2)])
        execution = execute_query(method, query)
        assert execution.answer_ids == brute_force_answer(handmade_dataset, query)

    def test_counts_and_times_recorded(self, handmade_dataset):
        method = SIMethod(handmade_dataset, matcher="vf2plus")
        query = Graph(labels=["C", "C"], edges=[(0, 1)])
        execution = execute_query(method, query)
        assert execution.subiso_tests == len(handmade_dataset)
        assert execution.filter_time_s >= 0.0
        assert execution.verify_time_s >= 0.0
        assert execution.total_time_s >= execution.verify_time_s
        assert execution.nodes_expanded >= 0

    def test_expensiveness_ratio(self, handmade_dataset):
        method = SIMethod(handmade_dataset, matcher="vf2plus")
        execution = execute_query(method, Graph(labels=["C", "C"], edges=[(0, 1)]))
        assert execution.expensiveness >= 0.0

    def test_supergraph_mode(self, handmade_dataset):
        method = SIMethod(handmade_dataset, matcher="vf2plus")
        # Find dataset graphs contained in this 5-vertex query.
        query = Graph(
            labels=["C", "C", "O", "N", "C"],
            edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)],
        )
        execution = execute_query(method, query, query_mode="supergraph")
        expected = frozenset(
            graph.graph_id
            for graph in handmade_dataset
            if MATCHER.is_subgraph(graph, query)
        )
        assert execution.answer_ids == expected
        assert 3 in execution.answer_ids  # the C-C edge is inside the query

    def test_verify_candidates_partial_set(self, handmade_dataset):
        method = SIMethod(handmade_dataset, matcher="vf2plus")
        query = Graph(labels=["C", "C"], edges=[(0, 1)])
        answers, raw_time, tests, nodes, records = verify_candidates(
            method, query, [0, 3]
        )
        assert tests == 2
        assert answers <= {0, 3}
        assert len(records) == 2


class TestMethodRegistry:
    def test_available_methods_contain_paper_methods(self):
        names = set(available_methods())
        assert {"ggsx", "grapes1", "grapes6", "ctindex", "vf2", "vf2plus", "graphql"} <= names

    def test_build_si_method(self, handmade_dataset):
        method = method_by_name("vf2plus", handmade_dataset)
        assert method.name == "si-vf2plus"

    def test_build_ftv_method(self, tiny_dataset):
        method = method_by_name("ggsx", tiny_dataset)
        assert method.name == "ggsx"
        assert method.index_size_bytes() > 0

    def test_grapes_variants(self, tiny_dataset):
        assert method_by_name("grapes6", tiny_dataset).verify_parallelism == 6

    def test_unknown_method(self, handmade_dataset):
        with pytest.raises(BenchmarkError):
            method_by_name("turbo-iso", handmade_dataset)

    def test_register_custom_method(self, handmade_dataset):
        register_method("custom-si", lambda dataset: SIMethod(dataset, matcher="vf2"))
        assert "custom-si" in available_methods()
        assert method_by_name("custom-si", handmade_dataset).name == "si-vf2"

    def test_register_empty_name_rejected(self):
        with pytest.raises(BenchmarkError):
            register_method("", lambda dataset: None)
