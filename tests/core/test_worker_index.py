"""Sealed feature index on the multi-process serving path.

PR 8 removed per-worker dataset copies; this pins the same property for the
FTV *index*: the pool owner compiles its built index into one
``*.ftv.arena`` segment at :meth:`ProcessPoolCacheService.start`, every
forked worker attaches it read-only, and worker startup over the packed
dataset constructs **zero** ``Graph`` objects.  A stale segment (left over
from a different dataset) must fail the content-hash handshake and fall
back to an in-process rebuild — with identical answers either way.
"""

from __future__ import annotations

import functools
import os

import pytest

from repro.core import GraphCacheConfig, ProcessPoolCacheService, ShardedGraphCache
from repro.core.packed_dataset import PackedGraphDataset, seal_dataset
from repro.ftv.ctindex import CTIndex
from repro.ftv.ggsx import GraphGrepSX
from repro.ftv.grapes import Grapes
from repro.graphs.generators import aids_like
from repro.graphs.graph import graph_constructions
from repro.workloads import generate_type_a


@functools.lru_cache(maxsize=1)
def _dataset():
    return aids_like(scale=0.05, seed=1)


def _workload(count=24, seed=7):
    return list(
        generate_type_a(_dataset(), "ZZ", count, query_sizes=(3, 5, 8), seed=seed)
    )


def _config(tmp_path, **overrides):
    defaults = dict(
        cache_capacity=8,
        window_size=4,
        shards=2,
        backend="mmap",
        backend_path=str(tmp_path / "cache.db"),
        packed_match="on",
    )
    defaults.update(overrides)
    return GraphCacheConfig(**defaults)


class TestPoolSealsFeatureIndex:
    def test_start_seals_index_segment(self, tmp_path):
        with ProcessPoolCacheService(
            GraphGrepSX(_dataset()), _config(tmp_path), workers=2
        ) as pool:
            pool.start()
            assert pool.feature_index_path is not None
            assert pool.feature_index_path.endswith(".ftv.arena")
            assert os.path.exists(pool.feature_index_path)

    def test_unpacked_mode_has_no_index_path(self, tmp_path):
        with ProcessPoolCacheService(
            GraphGrepSX(_dataset()), _config(tmp_path, packed_match="off"), workers=2
        ) as pool:
            assert pool.feature_index_path is None

    def test_non_ftv_method_has_no_index_path(self, tmp_path):
        from repro.methods import SIMethod

        with ProcessPoolCacheService(
            SIMethod(_dataset(), matcher="vf2plus"), _config(tmp_path), workers=2
        ) as pool:
            pool.start()
            assert pool.feature_index_path is None

    @pytest.mark.parametrize("method_cls", [GraphGrepSX, Grapes, CTIndex])
    def test_pool_answers_match_sharded_cache(self, tmp_path, method_cls):
        workload = _workload()
        sharded = ShardedGraphCache(
            method_cls(_dataset()), GraphCacheConfig(cache_capacity=8, window_size=4, shards=2)
        )
        expected = [sharded.query(query).answer_ids for query in workload]
        sharded.close()

        with ProcessPoolCacheService(
            method_cls(_dataset()), _config(tmp_path), workers=2
        ) as pool:
            answers = [result.answer_ids for result in pool.run(workload)]
        assert answers == expected


class TestDecodeFreeStartup:
    @pytest.mark.parametrize("method_cls", [GraphGrepSX, Grapes, CTIndex])
    def test_build_over_packed_dataset_constructs_no_graphs(self, tmp_path, method_cls):
        path = seal_dataset(_dataset(), tmp_path / "dataset.arena")
        packed = PackedGraphDataset.attach(path)
        try:
            before = graph_constructions()
            method_cls(packed)
            assert graph_constructions() == before
        finally:
            packed.close()

    def test_attach_prebuilt_index_constructs_no_graphs(self, tmp_path):
        index_path = tmp_path / "index.ftv.arena"
        GraphGrepSX(_dataset()).seal_feature_index(index_path)
        path = seal_dataset(_dataset(), tmp_path / "dataset.arena")
        packed = PackedGraphDataset.attach(path)
        try:
            method = GraphGrepSX(packed)
            before = graph_constructions()
            assert method.attach_feature_index(index_path) is True
            assert graph_constructions() == before
        finally:
            packed.close()


class TestStaleIndexFallback:
    def test_stale_segment_detected_and_rebuilt(self, tmp_path):
        workload = _workload(count=16)
        config = _config(tmp_path)
        # Pre-place an index sealed over a *different* dataset at the pool's
        # segment path: start() keeps the existing file, the workers' hash
        # handshake rejects it, and they rebuild in-process.
        stale_source = GraphGrepSX(aids_like(scale=0.05, seed=2))
        stale_source.seal_feature_index(f"{config.backend_path}.ftv.arena")

        fresh = ShardedGraphCache(
            GraphGrepSX(_dataset()),
            GraphCacheConfig(cache_capacity=8, window_size=4, shards=2),
        )
        expected = [fresh.query(query).answer_ids for query in workload]
        fresh.close()

        with ProcessPoolCacheService(
            GraphGrepSX(_dataset()), config, workers=2
        ) as pool:
            answers = [result.answer_ids for result in pool.run(workload)]
        assert answers == expected

    def test_stale_attach_unit_warns_and_rebuilds(self, tmp_path):
        index_path = tmp_path / "index.ftv.arena"
        GraphGrepSX(aids_like(scale=0.05, seed=2)).seal_feature_index(index_path)
        method = GraphGrepSX(_dataset())
        with pytest.warns(UserWarning, match="stale"):
            attached = method.attach_feature_index(index_path)
        assert attached is False
        assert method.feature_index is None
        method.rebuild_index()
        probe = _workload(count=4)[0]
        assert method.candidates(probe) == GraphGrepSX(_dataset()).candidates(probe)
