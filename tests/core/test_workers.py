"""ProcessPoolCacheService: fork lifecycle, counter identity, warm handoff.

The multi-process pool must be *observably indistinguishable* from a
single-process :class:`ShardedGraphCache` with the same shard count: same
per-query results, same aggregate work counters.  These tests pin that
oracle on a small synthetic dataset (the benchmark suite re-pins it on the
full aids/pdbs scenario grid), plus the fork-after-seal lifecycle details.
"""

from __future__ import annotations

import functools

import pytest

from repro.core import GraphCacheConfig, ProcessPoolCacheService, ShardedGraphCache
from repro.exceptions import CacheError
from repro.graphs.generators import aids_like
from repro.methods import SIMethod
from repro.workloads import generate_type_a


@functools.lru_cache(maxsize=1)
def _dataset():
    return aids_like(scale=0.05, seed=1)


def _workload(count=30, seed=7):
    return list(
        generate_type_a(_dataset(), "ZZ", count, query_sizes=(3, 5, 8), seed=seed)
    )


def _method():
    return SIMethod(_dataset(), matcher="vf2plus")


def _config(**overrides):
    defaults = dict(cache_capacity=8, window_size=4, shards=2)
    defaults.update(overrides)
    return GraphCacheConfig(**defaults)


def _result_fields(result):
    return (
        result.answer_ids,
        result.method_candidates,
        result.final_candidates,
        result.subiso_tests,
        result.containment_tests,
        result.shortcut,
    )


def _counters(stats) -> dict:
    return {
        "queries_processed": stats.queries_processed,
        "subiso_tests": stats.subiso_tests,
        "subiso_tests_alleviated": stats.subiso_tests_alleviated,
        "containment_tests": stats.containment_tests,
        "containment_memo_hits": stats.containment_memo_hits,
        "cache_hits": stats.cache_hits,
        "exact_hits": stats.exact_hits,
    }


class TestCounterIdentity:
    def test_pool_matches_sharded_cache(self):
        workload = _workload()
        sharded = ShardedGraphCache(_method(), _config())
        expected_results = [sharded.query(query) for query in workload]
        expected = _counters(sharded.runtime_statistics)
        sharded.close()

        with ProcessPoolCacheService(_method(), _config(), workers=2) as pool:
            results = pool.run(workload)
            assert _counters(pool.runtime_statistics()) == expected
        assert [_result_fields(r) for r in results] == [
            _result_fields(r) for r in expected_results
        ]

    def test_single_worker_owns_every_shard(self):
        workload = _workload(count=16)
        sharded = ShardedGraphCache(_method(), _config())
        for query in workload:
            sharded.query(query)
        expected = _counters(sharded.runtime_statistics)
        sharded.close()

        with ProcessPoolCacheService(_method(), _config(), workers=1) as pool:
            pool.run(workload)
            assert pool.shard_count == 2
            assert _counters(pool.runtime_statistics()) == expected


class TestWarmHandoff:
    def test_workers_adopt_sealed_warm_state(self):
        workload = _workload(count=24)
        warm, cold = workload[:12], workload[12:]

        sharded = ShardedGraphCache(_method(), _config())
        for query in workload:
            sharded.query(query)
        expected = _counters(sharded.runtime_statistics)
        sharded.close()

        with ProcessPoolCacheService(_method(), _config(), workers=2) as pool:
            pool.warm(warm)
            pool.start()
            pool.run(cold)
            combined = _counters(pool.runtime_statistics())
        # Worker-side counters restart cold at the fork (hit/work statistics
        # live in the process), so only the post-fork share is counted; the
        # adopted cache contents must still produce hits on the cold half.
        assert combined["queries_processed"] == len(cold)
        assert combined["cache_hits"] > 0

    def test_warm_after_start_rejected(self):
        with ProcessPoolCacheService(_method(), _config(), workers=2) as pool:
            pool.start()
            with pytest.raises(CacheError):
                pool.warm(_workload(count=2))


class TestLifecycle:
    def test_more_workers_than_shards_rejected(self):
        with pytest.raises(CacheError):
            ProcessPoolCacheService(_method(), _config(shards=2), workers=3)

    def test_close_is_idempotent_and_final(self):
        pool = ProcessPoolCacheService(_method(), _config(), workers=2)
        pool.run(_workload(count=4))
        assert pool.started
        pool.close()
        pool.close()
        with pytest.raises(CacheError):
            pool.start()

    def test_arena_paths_exist_after_warm_start(self, tmp_path):
        config = _config(backend="mmap", backend_path=str(tmp_path / "pool"))
        with ProcessPoolCacheService(_method(), config, workers=2) as pool:
            pool.warm(_workload(count=8))
            pool.start()
            paths = pool.arena_paths()
            assert paths, "sealed segments should exist after warm+start"
            for path in paths:
                assert path.exists()
                assert path.suffix == ".arena"


class TestPackedMatch:
    """The zero-decode serving mode: same answers, decode_avoided pinned."""

    def test_packed_counters_match_decode_path(self):
        workload = _workload()
        with ProcessPoolCacheService(
            _method(), _config(packed_match="off"), workers=2
        ) as pool:
            decoded_results = pool.run(workload)
            decoded = _counters(pool.runtime_statistics())
            assert pool.runtime_statistics().decode_avoided == 0

        with ProcessPoolCacheService(
            _method(), _config(), workers=2  # default "auto" -> on in workers
        ) as pool:
            packed_results = pool.run(workload)
            stats = pool.runtime_statistics()
            assert _counters(stats) == decoded
            # Zero Graph constructions in the worker query loop: every
            # request arrived as a PackedGraphView.
            assert stats.decode_avoided == len(workload)
        assert [_result_fields(r) for r in packed_results] == [
            _result_fields(r) for r in decoded_results
        ]

    def test_dataset_arena_sealed_once(self, tmp_path):
        config = _config(backend="mmap", backend_path=str(tmp_path / "pool"))
        with ProcessPoolCacheService(_method(), config, workers=2) as pool:
            pool.run(_workload(count=6))
            dataset_arena = tmp_path / "pool.dataset.arena"
            assert dataset_arena.exists()

    def test_packed_off_skips_dataset_arena(self, tmp_path):
        config = _config(
            backend="mmap",
            backend_path=str(tmp_path / "pool"),
            packed_match="off",
        )
        with ProcessPoolCacheService(_method(), config, workers=2) as pool:
            pool.run(_workload(count=6))
            assert not (tmp_path / "pool.dataset.arena").exists()

    def test_reseal_publishes_deltas_and_serving_continues(self):
        workload = _workload(count=24)
        with ProcessPoolCacheService(_method(), _config(), workers=2) as pool:
            pool.run(workload[:12])
            first = pool.reseal()  # first seal of each shard's lifetime
            assert sum(first.values()) > 0
            pool.run(workload[12:18])
            second = pool.reseal()  # now appends delta segments
            assert set(second) == set(first)
            stats = pool.arena_statistics()
            assert stats["live_bytes"] > 0
            assert stats["delta_segments"] >= 1
            results = pool.run(workload[18:])
            assert len(results) == 6
            assert all(r is not None for r in results)

    def test_arena_statistics_shape(self):
        with ProcessPoolCacheService(_method(), _config(), workers=2) as pool:
            pool.run(_workload(count=4))
            stats = pool.arena_statistics()
            assert set(stats) == {
                "live_bytes", "dead_bytes", "delta_segments",
                "compaction_events", "shards",
            }
            assert set(stats["shards"]) == set(range(pool.shard_count))
            for shard_stats in stats["shards"].values():
                for table in shard_stats["tables"]:
                    assert {"table", "live_bytes", "dead_bytes"} <= set(table)
