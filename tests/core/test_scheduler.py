"""MaintenanceScheduler: modes, plan journal, drain semantics (ISSUE-5)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import GraphCache, GraphCacheConfig, build_cache, load_cache, save_cache
from repro.core.policies import (
    SCHEDULER_MODES,
    BackgroundMaintenanceScheduler,
    BarrierMaintenanceScheduler,
    MaintenancePlan,
    PlanJournal,
    SyncMaintenanceScheduler,
    create_scheduler,
)
from repro.core.sharding import ShardedGraphCache
from repro.exceptions import CacheError
from repro.graphs.generators import aids_like
from repro.methods import SIMethod
from repro.workloads import generate_type_a

DATASET = aids_like(scale=0.05, seed=3)


def _workload(count: int = 30, seed: int = 7):
    return list(
        generate_type_a(DATASET, "ZZ", count, query_sizes=(3, 5, 8), seed=seed)
    )


def _cache(mode: str, **overrides) -> GraphCache:
    config = GraphCacheConfig(
        cache_capacity=6, window_size=3, maintenance_mode=mode, **overrides
    )
    return build_cache(SIMethod(DATASET, matcher="vf2plus"), config)


class TestFactoryAndConfig:
    def test_modes_registry(self):
        assert SCHEDULER_MODES == ("sync", "background", "barrier")

    @pytest.mark.parametrize(
        "mode, cls",
        [
            ("sync", SyncMaintenanceScheduler),
            ("background", BackgroundMaintenanceScheduler),
            ("barrier", BarrierMaintenanceScheduler),
        ],
    )
    def test_cache_builds_the_configured_scheduler(self, mode, cls):
        cache = _cache(mode)
        try:
            assert type(cache.maintenance_scheduler) is cls
            assert cache.maintenance_scheduler.mode == mode
        finally:
            cache.close()

    def test_unknown_mode_rejected(self):
        with pytest.raises(CacheError):
            GraphCacheConfig(maintenance_mode="eager")

    def test_create_scheduler_unknown_mode(self):
        cache = _cache("sync")
        try:
            with pytest.raises(CacheError):
                create_scheduler("nope", cache.maintenance_engine)
        finally:
            cache.close()

    def test_label_suffix_for_non_sync_modes(self):
        assert GraphCacheConfig(maintenance_mode="sync").label() == "c100-b20"
        assert (
            GraphCacheConfig(maintenance_mode="background").label()
            == "c100-b20-background"
        )

    def test_with_maintenance_mode_preserves_journal_path(self):
        config = GraphCacheConfig(journal_path="plans.jsonl")
        switched = config.with_maintenance_mode("background")
        assert switched.maintenance_mode == "background"
        assert switched.journal_path == "plans.jsonl"  # not silently dropped
        cleared = config.with_maintenance_mode("background", journal_path=None)
        assert cleared.journal_path is None
        replaced = config.with_maintenance_mode("barrier", journal_path="other.jsonl")
        assert replaced.journal_path == "other.jsonl"


class TestSchedulingBehaviour:
    def test_sync_returns_reports_inline(self):
        cache = _cache("sync")
        try:
            reports = [r for q in _workload() if (r := cache.query(q)).maintenance_time_s]
            assert reports  # at least one query was charged a round inline
            counters = cache.maintenance_scheduler.counters
            assert counters.rounds > 0
            assert counters.worker_rounds == 0
            assert counters.inline_rounds == counters.rounds
        finally:
            cache.close()

    def test_background_reports_appear_after_drain(self):
        cache = _cache("background")
        try:
            results = [cache.query(q) for q in _workload()]
            # The committing query is never charged maintenance time: the
            # round runs (and is timed) on the worker.
            assert all(r.maintenance_time_s == 0.0 for r in results)
            cache.drain_maintenance()
            counters = cache.maintenance_scheduler.counters
            assert counters.rounds > 0
            assert counters.inline_rounds == 0
            assert counters.worker_rounds == counters.rounds
            assert len(cache.window_manager.reports) == counters.rounds
            assert len(cache.plan_journal) == counters.rounds
        finally:
            cache.close()

    def test_barrier_rounds_run_on_worker_but_block(self):
        cache = _cache("barrier")
        try:
            import threading

            main_ident = threading.get_ident()
            charged = [r for q in _workload() if (r := cache.query(q)).maintenance_time_s]
            assert charged  # barrier completes before the query returns
            counters = cache.maintenance_scheduler.counters
            assert counters.rounds > 0
            assert counters.inline_rounds == 0
            assert main_ident not in counters.decide_thread_idents
        finally:
            cache.close()

    def test_background_failure_surfaces_on_drain(self):
        cache = _cache("background")
        try:
            def boom(window_entries, current_serial, lock=None):
                raise RuntimeError("engine exploded")

            cache.maintenance_engine.run = boom  # type: ignore[method-assign]
            for query in _workload(6):
                cache.query(query)
            with pytest.raises(CacheError, match="background maintenance"):
                cache.drain_maintenance()
        finally:
            cache._scheduler._failure = None  # already surfaced above
            cache.close()


class TestJournal:
    def test_sync_and_barrier_journals_byte_identical(self):
        sync_cache, barrier_cache = _cache("sync"), _cache("barrier")
        try:
            for query in _workload():
                sync_cache.query(query)
                barrier_cache.query(query)
            assert len(sync_cache.plan_journal) > 0
            assert (
                sync_cache.plan_journal.dumps() == barrier_cache.plan_journal.dumps()
            )
        finally:
            sync_cache.close()
            barrier_cache.close()

    def test_journal_file_round_trip(self, tmp_path: Path):
        journal_file = tmp_path / "plans.jsonl"
        cache = _cache("background", journal_path=str(journal_file))
        try:
            for query in _workload():
                cache.query(query)
        finally:
            cache.close()  # drain-on-close flushes every pending round
        plans = PlanJournal.load(journal_file)
        assert plans == cache.plan_journal.plans()
        assert len(plans) == len(cache.plan_journal)
        # Each line is valid standalone JSON carrying the full rationale.
        first = json.loads(journal_file.read_text().splitlines()[0])
        assert MaintenancePlan.from_record(first) == plans[0]
        assert {"policy", "admitted_serials", "evicted_serials"} <= set(first)

    def test_file_backed_journal_bounds_memory(self, tmp_path: Path):
        """A file-backed journal retains only a bounded in-memory tail; the
        full stream lives on disk."""
        from repro.core.policies.plan import MaintenancePlan as Plan

        journal_file = tmp_path / "bounded.jsonl"
        journal = PlanJournal(journal_file)
        limit = PlanJournal.MEMORY_LIMIT
        total = limit + 25
        for serial in range(1, total + 1):
            journal.append(
                Plan(
                    current_serial=serial,
                    window_serials=(serial,),
                    admitted_serials=(serial,),
                    rejected_serials=(),
                    evicted_serials=(),
                    policy="lru",
                )
            )
        assert len(journal) == total  # the logical count is exact
        retained = journal.records()
        assert len(retained) == limit  # RAM holds only the newest tail
        assert retained[-1]["current_serial"] == total
        assert len(PlanJournal.load(journal_file)) == total  # disk has all
        # In-memory journals (no path) retain everything: they ARE the store.
        unbounded = PlanJournal()
        assert unbounded._records.maxlen is None

    def test_sharded_journal_one_file_per_shard(self, tmp_path: Path):
        base = tmp_path / "plans.jsonl"
        cache = build_cache(
            SIMethod(DATASET, matcher="vf2plus"),
            GraphCacheConfig(
                cache_capacity=4,
                window_size=2,
                shards=3,
                maintenance_mode="background",
                journal_path=str(base),
            ),
        )
        assert isinstance(cache, ShardedGraphCache)
        try:
            for query in _workload():
                cache.query(query)
        finally:
            cache.close()
        written = sorted(p.name for p in tmp_path.iterdir())
        assert written == [f"plans.jsonl.shard{k}" for k in range(3)]
        total = sum(len(PlanJournal.load(path)) for path in tmp_path.iterdir())
        assert total == sum(len(j) for j in cache.plan_journals())
        assert total > 0


class TestDrainSemantics:
    def test_snapshot_drains_pending_rounds(self, tmp_path: Path):
        """Drain-before-snapshot: pending plans are applied in full, so the
        persisted store equals the journal stream replayed from empty —
        never a half-applied round."""
        bg_cache = _cache("background")
        try:
            for query in _workload():
                bg_cache.query(query)
            # No explicit drain: save_cache itself must quiesce the worker.
            bg_path = tmp_path / "bg.json"
            save_cache(bg_cache, bg_path)
            # 30 queries / window 3: every one of the 10 fills is journaled.
            assert len(bg_cache.plan_journal) == 10
            # Replay the journal's decision stream over an empty cache ...
            expected: list = []
            for plan in bg_cache.plan_journal.plans():
                expected = [s for s in expected if s not in plan.evicted_serials]
                expected.extend(plan.admitted_serials)
            # ... and it must match the persisted entries exactly (same
            # serials, same insertion order).
            payload = json.loads(bg_path.read_text())
            (shard_payload,) = payload["shards"]
            assert [e["serial"] for e in shard_payload["entries"]] == expected
            restored = load_cache(bg_path, SIMethod(DATASET, matcher="vf2plus"))
            assert restored.cached_serials == expected
            restored.close()
        finally:
            bg_cache.close()

    def test_close_drains_pending_rounds(self):
        cache = _cache("background")
        for query in _workload():
            cache.query(query)
        cache.close()
        counters = cache.maintenance_scheduler.counters
        assert counters.rounds > 0
        assert len(cache.plan_journal) == counters.rounds
        with pytest.raises(CacheError):
            cache.maintenance_scheduler.submit([], 0)  # closed scheduler

    def test_idle_probe(self):
        cache = _cache("background")
        try:
            assert cache.maintenance_scheduler.idle()
            for query in _workload():
                cache.query(query)
            cache.drain_maintenance()
            assert cache.maintenance_scheduler.idle()
        finally:
            cache.close()

    def test_drain_is_noop_for_sync(self):
        cache = _cache("sync")
        try:
            for query in _workload(9):
                cache.query(query)
            before = len(cache.window_manager.reports)
            cache.drain_maintenance()
            assert len(cache.window_manager.reports) == before
        finally:
            cache.close()
