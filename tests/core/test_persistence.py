"""Tests for saving/loading warm GraphCache snapshots."""

from __future__ import annotations

import pytest

from repro.core.cache import GraphCache
from repro.core.config import GraphCacheConfig
from repro.core.persistence import load_cache, save_cache
from repro.exceptions import CacheError
from repro.graphs.generators import aids_like
from repro.graphs.graph import Graph
from repro.methods import SIMethod
from repro.workloads import generate_type_a


@pytest.fixture
def warm_cache(tiny_dataset):
    method = SIMethod(tiny_dataset, matcher="vf2plus")
    cache = GraphCache(method, GraphCacheConfig(cache_capacity=5, window_size=2))
    workload = generate_type_a(tiny_dataset, "ZZ", 12, query_sizes=(3, 5), seed=4)
    for query in workload:
        cache.query(query)
    return cache, method, workload


class TestSaveLoadRoundTrip:
    def test_round_trip_preserves_entries(self, warm_cache, tmp_path):
        cache, method, _ = warm_cache
        path = tmp_path / "cache.json"
        save_cache(cache, path)
        restored = load_cache(path, method)
        assert sorted(restored.cached_serials) == sorted(cache.cached_serials)
        for serial in cache.cached_serials:
            assert restored.cached_entry(serial).query == cache.cached_entry(serial).query
            assert restored.cached_entry(serial).answer_ids == cache.cached_entry(serial).answer_ids

    def test_round_trip_preserves_statistics(self, warm_cache, tmp_path):
        cache, method, _ = warm_cache
        path = tmp_path / "cache.json"
        save_cache(cache, path)
        restored = load_cache(path, method)
        for serial in cache.cached_serials:
            original = cache.statistics_manager.snapshot(serial)
            loaded = restored.statistics_manager.snapshot(serial)
            assert loaded == original

    def test_round_trip_preserves_config(self, warm_cache, tmp_path):
        cache, method, _ = warm_cache
        path = tmp_path / "cache.json"
        save_cache(cache, path)
        restored = load_cache(path, method)
        assert restored.config == cache.config

    def test_restored_cache_answers_correctly(self, warm_cache, tmp_path, tiny_dataset):
        cache, method, workload = warm_cache
        path = tmp_path / "cache.json"
        save_cache(cache, path)
        restored = load_cache(path, method)
        # Replaying queries through the restored cache gives identical answers
        # to the plain method, and popular queries hit immediately (warm cache).
        hit_any = False
        for query in workload[:6]:
            result = restored.query(query)
            expected = frozenset(
                g.graph_id for g in tiny_dataset if method.matcher.is_subgraph(query, g)
            )
            assert result.answer_ids == expected
            hit_any = hit_any or result.cache_hit
        assert hit_any

    def test_serial_counter_continues(self, warm_cache, tmp_path):
        cache, method, workload = warm_cache
        path = tmp_path / "cache.json"
        save_cache(cache, path)
        restored = load_cache(path, method)
        result = restored.query(workload[0])
        assert result.serial > max(cache.cached_serials)


class TestValidation:
    def test_dataset_size_mismatch_rejected(self, warm_cache, tmp_path):
        cache, _, _ = warm_cache
        path = tmp_path / "cache.json"
        save_cache(cache, path)
        other_method = SIMethod(aids_like(scale=0.03, seed=99), matcher="vf2plus")
        with pytest.raises(CacheError):
            load_cache(path, other_method)

    def test_unsupported_version_rejected(self, warm_cache, tmp_path):
        cache, method, _ = warm_cache
        path = tmp_path / "cache.json"
        save_cache(cache, path)
        text = path.read_text().replace('"format_version": 1', '"format_version": 99')
        path.write_text(text)
        with pytest.raises(CacheError):
            load_cache(path, method)
