"""Tests for saving/loading warm GraphCache snapshots.

Includes the snapshot round-trip property (ISSUE-3): save → load → replay of
a workload yields identical answer sets and deterministic work counters to
the uninterrupted run — for both storage backends, for ``shards > 1``, and
across the v1 → v2 format migration.
"""

from __future__ import annotations

import functools
import json
import random
import warnings
from dataclasses import asdict

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cache import GraphCache
from repro.core.config import GraphCacheConfig
from repro.core.persistence import load_cache, save_cache
from repro.core.sharding import ShardedGraphCache, build_cache
from repro.core.stores import WindowEntry
from repro.exceptions import CacheError
from repro.graphs.generators import aids_like
from repro.graphs.graph import Graph
from repro.graphs.io import graph_to_text
from repro.methods import SIMethod
from repro.workloads import generate_type_a


@pytest.fixture
def warm_cache(tiny_dataset):
    method = SIMethod(tiny_dataset, matcher="vf2plus")
    cache = GraphCache(method, GraphCacheConfig(cache_capacity=5, window_size=2))
    workload = generate_type_a(tiny_dataset, "ZZ", 12, query_sizes=(3, 5), seed=4)
    for query in workload:
        cache.query(query)
    return cache, method, workload


class TestSaveLoadRoundTrip:
    def test_round_trip_preserves_entries(self, warm_cache, tmp_path):
        cache, method, _ = warm_cache
        path = tmp_path / "cache.json"
        save_cache(cache, path)
        restored = load_cache(path, method)
        assert sorted(restored.cached_serials) == sorted(cache.cached_serials)
        for serial in cache.cached_serials:
            assert restored.cached_entry(serial).query == cache.cached_entry(serial).query
            assert restored.cached_entry(serial).answer_ids == cache.cached_entry(serial).answer_ids

    def test_round_trip_preserves_statistics(self, warm_cache, tmp_path):
        cache, method, _ = warm_cache
        path = tmp_path / "cache.json"
        save_cache(cache, path)
        restored = load_cache(path, method)
        for serial in cache.cached_serials:
            original = cache.statistics_manager.snapshot(serial)
            loaded = restored.statistics_manager.snapshot(serial)
            assert loaded == original

    def test_round_trip_preserves_config(self, warm_cache, tmp_path):
        cache, method, _ = warm_cache
        path = tmp_path / "cache.json"
        save_cache(cache, path)
        restored = load_cache(path, method)
        assert restored.config == cache.config

    def test_restored_cache_answers_correctly(self, warm_cache, tmp_path, tiny_dataset):
        cache, method, workload = warm_cache
        path = tmp_path / "cache.json"
        save_cache(cache, path)
        restored = load_cache(path, method)
        # Replaying queries through the restored cache gives identical answers
        # to the plain method, and popular queries hit immediately (warm cache).
        hit_any = False
        for query in workload[:6]:
            result = restored.query(query)
            expected = frozenset(
                g.graph_id for g in tiny_dataset if method.matcher.is_subgraph(query, g)
            )
            assert result.answer_ids == expected
            hit_any = hit_any or result.cache_hit
        assert hit_any

    def test_serial_counter_continues(self, warm_cache, tmp_path):
        cache, method, workload = warm_cache
        path = tmp_path / "cache.json"
        save_cache(cache, path)
        restored = load_cache(path, method)
        result = restored.query(workload[0])
        assert result.serial > max(cache.cached_serials)


@functools.lru_cache(maxsize=4)
def _roundtrip_dataset(seed: int):
    return aids_like(scale=0.05, seed=seed)


def _deterministic_fields(result):
    """The per-query fields that must survive a snapshot round-trip.

    ``containment_tests`` and ``containment_memo_hits`` are summed: the
    containment-verdict memo is a cache-local accelerator that restarts cold
    after a restore, so the split between real tests and memo hits may shift
    while their total (the number of query-vs-query decisions) is invariant.
    """
    return (
        result.serial,
        result.answer_ids,
        result.method_candidates,
        result.final_candidates,
        result.direct_answers,
        result.subiso_tests,
        result.shortcut,
        result.sub_hits,
        result.super_hits,
        result.containment_tests + result.containment_memo_hits,
    )


def _write_v1_snapshot(cache: GraphCache, path) -> None:
    """Produce a snapshot in the exact v1 format (flat, no window).

    v1 also stored ``queries_processed`` as ``next_serial`` and knew nothing
    of the backend/shards config fields — reproduced faithfully here so the
    migration path is exercised end to end.
    """
    config = asdict(cache.config)
    for newer_field in ("backend", "backend_path", "shards", "admission_kind"):
        config.pop(newer_field, None)
    entries = []
    for serial in cache.cached_serials:
        entry = cache.cached_entry(serial)
        entries.append(
            {
                "serial": serial,
                "query": graph_to_text(entry.query),
                "answers": sorted(entry.answer_ids),
                "statistics": asdict(cache.statistics_manager.snapshot(serial)),
            }
        )
    payload = {
        "format_version": 1,
        "config": config,
        "next_serial": cache.runtime_statistics.queries_processed,
        "dataset_name": cache.method.dataset.name,
        "dataset_size": len(cache.method.dataset),
        "entries": entries,
    }
    path.write_text(json.dumps(payload), encoding="utf-8")


class TestRoundTripReplayProperty:
    """save → load → replay ≡ uninterrupted run (the ISSUE-3 property)."""

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        split=st.integers(min_value=1, max_value=13),
        backend=st.sampled_from(["memory", "sqlite"]),
        shards=st.sampled_from([1, 3]),
    )
    def test_replay_matches_uninterrupted_run(
        self, tmp_path_factory, seed, split, backend, shards
    ):
        dataset = _roundtrip_dataset(seed % 3)
        workload = list(
            generate_type_a(dataset, "ZZ", 14, query_sizes=(3, 5, 8), seed=seed)
        )
        config = GraphCacheConfig(
            cache_capacity=5, window_size=3, backend=backend, shards=shards
        )
        path = tmp_path_factory.mktemp("snapshots") / "cache.json"

        uninterrupted = build_cache(SIMethod(dataset, matcher="vf2plus"), config)
        expected = [_deterministic_fields(uninterrupted.query(q)) for q in workload]

        interrupted = build_cache(SIMethod(dataset, matcher="vf2plus"), config)
        prefix = [_deterministic_fields(interrupted.query(q)) for q in workload[:split]]
        save_cache(interrupted, path)
        restored = load_cache(path, SIMethod(dataset, matcher="vf2plus"))
        suffix = [_deterministic_fields(restored.query(q)) for q in workload[split:]]

        assert prefix + suffix == expected
        uninterrupted.close()
        interrupted.close()
        restored.close()

    def test_v1_migration_replay_at_window_boundary(self, tmp_path):
        """A v1 snapshot (no window persisted) replays identically when taken
        at a window boundary — the only state v1 could capture."""
        dataset = _roundtrip_dataset(0)
        workload = list(
            generate_type_a(dataset, "ZZ", 12, query_sizes=(3, 5), seed=11)
        )
        config = GraphCacheConfig(cache_capacity=5, window_size=3)
        split = 6  # multiple of window_size: the window is empty here

        uninterrupted = GraphCache(SIMethod(dataset, matcher="vf2plus"), config)
        expected = [_deterministic_fields(uninterrupted.query(q)) for q in workload]

        interrupted = GraphCache(SIMethod(dataset, matcher="vf2plus"), config)
        for query in workload[:split]:
            interrupted.query(query)
        path = tmp_path / "v1.json"
        _write_v1_snapshot(interrupted, path)

        restored = load_cache(path, SIMethod(dataset, matcher="vf2plus"))
        assert isinstance(restored, GraphCache)
        suffix = [_deterministic_fields(restored.query(q)) for q in workload[split:]]
        assert suffix == expected[split:]


class TestSnapshotFormatV2:
    def test_window_entries_are_persisted(self, warm_cache, tmp_path):
        cache, method, workload = warm_cache
        # Put the cache mid-window, then snapshot.
        extra = workload[0]
        cache.query(extra)
        in_window = [e.serial for e in cache.window_manager.window_entries()]
        assert in_window  # the fixture's workload leaves a non-empty window
        path = tmp_path / "cache.json"
        save_cache(cache, path)
        restored = load_cache(path, method)
        assert [
            e.serial for e in restored.window_manager.window_entries()
        ] == in_window

    def test_sharded_round_trip_preserves_every_shard(self, tmp_path):
        dataset = _roundtrip_dataset(1)
        workload = list(
            generate_type_a(dataset, "ZZ", 18, query_sizes=(3, 5, 8), seed=5)
        )
        config = GraphCacheConfig(cache_capacity=5, window_size=3, shards=3)
        sharded = ShardedGraphCache(SIMethod(dataset, matcher="vf2plus"), config)
        for query in workload:
            sharded.query(query)
        path = tmp_path / "sharded.json"
        save_cache(sharded, path)

        restored = load_cache(path, SIMethod(dataset, matcher="vf2plus"))
        assert isinstance(restored, ShardedGraphCache)
        assert restored.shard_count == 3
        for original, loaded in zip(sharded.shards, restored.shards, strict=True):
            assert loaded.cached_serials == original.cached_serials
            assert loaded.current_serial == original.current_serial
            for serial in original.cached_serials:
                assert (
                    loaded.cached_entry(serial).answer_ids
                    == original.cached_entry(serial).answer_ids
                )
                assert loaded.statistics_manager.snapshot(
                    serial
                ) == original.statistics_manager.snapshot(serial)

    def test_shard_count_mismatch_rejected(self, tmp_path):
        dataset = _roundtrip_dataset(1)
        config = GraphCacheConfig(shards=2)
        sharded = ShardedGraphCache(SIMethod(dataset, matcher="vf2plus"), config)
        path = tmp_path / "sharded.json"
        save_cache(sharded, path)
        payload = json.loads(path.read_text())
        payload["shards"] = payload["shards"][:1]
        path.write_text(json.dumps(payload))
        with pytest.raises(CacheError):
            load_cache(path, SIMethod(dataset, matcher="vf2plus"))

    def test_v1_next_serial_drift_is_corrected(self, tmp_path):
        """A v1 ``next_serial`` lower than the highest cached serial (the
        queries_processed drift) must not cause serial collisions."""
        dataset = _roundtrip_dataset(2)
        method = SIMethod(dataset, matcher="vf2plus")
        cache = GraphCache(method, GraphCacheConfig(cache_capacity=5, window_size=2))
        workload = list(generate_type_a(dataset, "ZZ", 8, query_sizes=(3, 5), seed=3))
        for query in workload:
            cache.query(query)
        path = tmp_path / "v1.json"
        _write_v1_snapshot(cache, path)
        payload = json.loads(path.read_text())
        payload["next_serial"] = 1  # simulate the drifted counter
        path.write_text(json.dumps(payload))

        restored = load_cache(path, method)
        top_restored = max(restored.cached_serials)
        assert restored.current_serial >= top_restored
        result = restored.query(workload[0])
        assert result.serial > top_restored


class TestPublicRestoreApi:
    def test_load_cache_does_not_touch_private_stores(self, warm_cache, tmp_path):
        """Restores flow through GraphCache.restore(); spot-check the API."""
        cache, method, _ = warm_cache
        entries = [cache.cached_entry(s) for s in cache.cached_serials]
        stats = [cache.statistics_manager.snapshot(s) for s in cache.cached_serials]

        fresh = GraphCache(method, cache.config)
        fresh.restore(entries, stats=stats, next_serial=cache.current_serial)
        assert fresh.cached_serials == cache.cached_serials
        assert fresh.current_serial == cache.current_serial
        for serial in cache.cached_serials:
            assert fresh.statistics_manager.snapshot(
                serial
            ) == cache.statistics_manager.snapshot(serial)

    def test_restore_replaces_preexisting_window(self, tiny_dataset):
        method = SIMethod(tiny_dataset, matcher="vf2plus")
        cache = GraphCache(method, GraphCacheConfig(cache_capacity=5, window_size=4))
        workload = generate_type_a(tiny_dataset, "ZZ", 3, query_sizes=(3,), seed=8)
        for query in workload:
            cache.query(query)
        assert cache.window_manager.window_entries()
        cache.restore([], next_serial=50)
        assert cache.window_manager.window_entries() == []
        assert cache.current_serial == 50
        assert cache.cached_serials == []


def _synthetic_stream(seed: int, count: int = 24):
    """Deterministic WindowEntry stream (synthetic timings, real graphs).

    Admission expensiveness is a wall-clock ratio on the live query path, so
    replay identity under admission control is tested by *injecting* the
    timings: the stream is a pure function of ``seed``, making the
    maintenance decisions — including the calibrated threshold — exactly
    reproducible across runs.
    """
    rng = random.Random(seed)
    entries = []
    for serial in range(1, count + 1):
        labels = ["C", "N", "O", "S"][serial % 4], ["C", "O"][serial % 2], "C"
        entries.append(
            WindowEntry(
                serial=serial,
                query=Graph(labels=list(labels), edges=[(0, 1), (1, 2)]),
                answer_ids=frozenset({serial % 3}),
                filter_time_s=1.0,
                verify_time_s=rng.uniform(0.1, 10.0),
            )
        )
    return entries


def _feed_stream(cache, entries, start_index: int = 0):
    """Round-robin the entries over the shards' window managers; collect plans."""
    plans = []
    shard_count = cache.shard_count if isinstance(cache, ShardedGraphCache) else 1
    for offset, entry in enumerate(entries):
        position = start_index + offset
        manager = (
            cache.shards[position % shard_count].window_manager
            if isinstance(cache, ShardedGraphCache)
            else cache.window_manager
        )
        report = manager.add_query(entry)
        if report is not None:
            plans.append(report.plan.to_record())
    return plans


class TestMidCalibrationRoundTrip:
    """ISSUE-4: admission/adaptive state survives snapshots (format v3).

    The seed silently dropped the admission controller's calibration state
    on restore, so a cache saved mid-calibration recalibrated from scratch.
    The property: for a deterministic maintenance stream, save → load →
    replay produces the identical plan sequence to an uninterrupted run —
    for both backends and shards ∈ {1, 3}, at any split point.
    """

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        split=st.integers(min_value=1, max_value=23),
        backend=st.sampled_from(["memory", "sqlite"]),
        shards=st.sampled_from([1, 3]),
    )
    def test_maintenance_replay_identity(
        self, tmp_path_factory, seed, split, backend, shards
    ):
        dataset = _roundtrip_dataset(seed % 3)
        config = GraphCacheConfig(
            cache_capacity=5,
            window_size=4,
            admission_control=True,
            admission_expensive_fraction=0.5,
            admission_calibration_windows=3,
            backend=backend,
            shards=shards,
        )
        entries = _synthetic_stream(seed)
        path = tmp_path_factory.mktemp("snapshots") / "midcal.json"

        uninterrupted = build_cache(SIMethod(dataset, matcher="vf2plus"), config)
        expected = _feed_stream(uninterrupted, entries)

        interrupted = build_cache(SIMethod(dataset, matcher="vf2plus"), config)
        prefix = _feed_stream(interrupted, entries[:split])
        save_cache(interrupted, path)
        restored = load_cache(path, SIMethod(dataset, matcher="vf2plus"))
        suffix = _feed_stream(restored, entries[split:], start_index=split)

        assert prefix + suffix == expected
        uninterrupted.close()
        interrupted.close()
        restored.close()

    def test_adaptive_state_round_trips_through_snapshot(self, tmp_path):
        dataset = _roundtrip_dataset(0)
        config = GraphCacheConfig(
            cache_capacity=5,
            window_size=4,
            admission_control=True,
            admission_kind="adaptive",
            admission_calibration_windows=1,
        )
        cache = GraphCache(SIMethod(dataset, matcher="vf2plus"), config)
        _feed_stream(cache, _synthetic_stream(3, count=8))
        controller = cache.window_manager.admission
        controller.record_window_saving(2.0)
        controller.record_window_saving(1.0)  # reversal mutates step + direction
        assert controller.threshold_history

        path = tmp_path / "adaptive.json"
        save_cache(cache, path)
        restored = load_cache(path, SIMethod(dataset, matcher="vf2plus"))
        restored_controller = restored.window_manager.admission
        assert restored_controller.state_record() == controller.state_record()
        assert restored_controller.threshold_history == controller.threshold_history

    def test_v2_snapshot_loads_with_cold_admission_state(self, warm_cache, tmp_path):
        """A v2 snapshot (no maintenance record) still loads; admission
        restarts cold — the only behaviour v2 ever captured — and the load
        says so with exactly one explicit warning (ISSUE-5) instead of
        silently resetting."""
        cache, method, _ = warm_cache
        path = tmp_path / "v2.json"
        save_cache(cache, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 2
        for shard_payload in payload["shards"]:
            shard_payload.pop("maintenance", None)
        path.write_text(json.dumps(payload))

        with pytest.warns(UserWarning, match="format v2.*restart cold") as caught:
            restored = load_cache(path, method)
        assert len(caught) == 1
        assert sorted(restored.cached_serials) == sorted(cache.cached_serials)
        # The cold state the warning announces: no fixed threshold, no
        # observed calibration windows.
        controller = restored.window_manager.admission
        assert controller.threshold is None
        assert controller.state_record()["windows_observed"] == 0
        assert controller.state_record()["observed_scores"] == []

    def test_v1_snapshot_warns_once_and_v3_is_silent(self, warm_cache, tmp_path):
        cache, method, _ = warm_cache
        v3_path = tmp_path / "v3.json"
        save_cache(cache, v3_path)

        # A v3 load must not warn at all.
        with warnings.catch_warnings():
            warnings.simplefilter("error", UserWarning)
            load_cache(v3_path, method)

        v1_path = tmp_path / "v1.json"
        payload = json.loads(v3_path.read_text())
        (shard_payload,) = payload["shards"]
        v1_payload = {
            "format_version": 1,
            "config": payload["config"],
            "dataset_name": payload["dataset_name"],
            "dataset_size": payload["dataset_size"],
            "next_serial": shard_payload["next_serial"],
            "entries": shard_payload["entries"],
        }
        v1_path.write_text(json.dumps(v1_payload))
        with pytest.warns(UserWarning, match="format v1") as caught:
            load_cache(v1_path, method)
        assert len(caught) == 1


class TestValidation:
    def test_dataset_size_mismatch_rejected(self, warm_cache, tmp_path):
        cache, _, _ = warm_cache
        path = tmp_path / "cache.json"
        save_cache(cache, path)
        other_method = SIMethod(aids_like(scale=0.03, seed=99), matcher="vf2plus")
        with pytest.raises(CacheError):
            load_cache(path, other_method)

    def test_unsupported_version_rejected(self, warm_cache, tmp_path):
        cache, method, _ = warm_cache
        path = tmp_path / "cache.json"
        save_cache(cache, path)
        text = path.read_text().replace('"format_version": 4', '"format_version": 99')
        path.write_text(text)
        with pytest.raises(CacheError):
            load_cache(path, method)
