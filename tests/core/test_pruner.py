"""Tests for the Candidate Set Pruner (equations 1 & 2 and the special cases)."""

from __future__ import annotations


from repro.core.processors import ProcessorOutcome
from repro.core.pruner import CandidateSetPruner
from repro.core.stores import CacheEntry, CacheStore
from repro.graphs.graph import Graph


def outcome(result_sub=(), result_super=(), exact=None):
    return ProcessorOutcome(
        result_sub=frozenset(result_sub),
        result_super=frozenset(result_super),
        exact_match_serial=exact,
        elapsed_s=0.0,
        containment_tests=0,
    )


def make_store(answers_by_serial):
    store = CacheStore(capacity=10)
    for serial, answers in answers_by_serial.items():
        store.add(
            CacheEntry(
                serial=serial,
                query=Graph(labels=["C"], edges=[]),
                answer_ids=frozenset(answers),
            )
        )
    return store


class TestSubgraphMode:
    def test_equation_1_moves_answers_out_of_candidates(self):
        """Paper's Figure 3(a): CSM={G1..G4}, Answer(g')={G1,G2}."""
        store = make_store({1: {1, 2}})
        pruner = CandidateSetPruner(store, query_mode="subgraph")
        result = pruner.prune(frozenset({1, 2, 3, 4}), outcome(result_sub=[1]))
        assert result.final_candidates == frozenset({3, 4})
        assert result.direct_answers == frozenset({1, 2})
        assert result.shortcut is None
        assert result.contributions[1] == frozenset({1, 2})

    def test_equation_2_restricts_candidates(self):
        """Paper's Figure 3(b): CSM={G1..G4}, Answer(g'')={G1,G5}."""
        store = make_store({2: {1, 5}})
        pruner = CandidateSetPruner(store, query_mode="subgraph")
        result = pruner.prune(frozenset({1, 2, 3, 4}), outcome(result_super=[2]))
        assert result.final_candidates == frozenset({1})
        assert result.direct_answers == frozenset()
        assert result.contributions[2] == frozenset({2, 3, 4})

    def test_both_equations_combined(self):
        store = make_store({1: {1, 2}, 2: {1, 2, 3}})
        pruner = CandidateSetPruner(store, query_mode="subgraph")
        result = pruner.prune(
            frozenset({1, 2, 3, 4}), outcome(result_sub=[1], result_super=[2])
        )
        # Equation 1 moves {1,2} to answers; equation 2 then drops 4.
        assert result.direct_answers == frozenset({1, 2})
        assert result.final_candidates == frozenset({3})
        assert result.removed_count == 3

    def test_multiple_supergraph_answers_unioned(self):
        store = make_store({1: {1}, 2: {2}})
        pruner = CandidateSetPruner(store, query_mode="subgraph")
        result = pruner.prune(frozenset({1, 2, 3}), outcome(result_sub=[1, 2]))
        assert result.direct_answers == frozenset({1, 2})
        assert result.final_candidates == frozenset({3})

    def test_multiple_subgraph_answers_intersected(self):
        store = make_store({1: {1, 2, 3}, 2: {2, 3, 4}})
        pruner = CandidateSetPruner(store, query_mode="subgraph")
        result = pruner.prune(frozenset({1, 2, 3, 4, 5}), outcome(result_super=[1, 2]))
        assert result.final_candidates == frozenset({2, 3})

    def test_exact_match_shortcut(self):
        store = make_store({7: {3, 9}})
        pruner = CandidateSetPruner(store, query_mode="subgraph")
        result = pruner.prune(
            frozenset({1, 2, 3}), outcome(result_sub=[7], result_super=[7], exact=7)
        )
        assert result.shortcut == "exact"
        assert result.shortcut_serial == 7
        assert result.direct_answers == frozenset({3, 9})
        assert result.final_candidates == frozenset()

    def test_empty_answer_shortcut(self):
        store = make_store({4: set()})
        pruner = CandidateSetPruner(store, query_mode="subgraph")
        result = pruner.prune(frozenset({1, 2, 3}), outcome(result_super=[4]))
        assert result.shortcut == "empty"
        assert result.shortcut_serial == 4
        assert result.final_candidates == frozenset()
        assert result.direct_answers == frozenset()

    def test_empty_answer_in_sub_direction_is_not_a_shortcut(self):
        # A cached *supergraph* of the query with an empty answer set proves
        # nothing about the query (subgraph-query mode).
        store = make_store({4: set()})
        pruner = CandidateSetPruner(store, query_mode="subgraph")
        result = pruner.prune(frozenset({1, 2}), outcome(result_sub=[4]))
        assert result.shortcut is None
        assert result.final_candidates == frozenset({1, 2})

    def test_no_relations_no_change(self):
        store = make_store({})
        pruner = CandidateSetPruner(store, query_mode="subgraph")
        result = pruner.prune(frozenset({1, 2}), outcome())
        assert result.final_candidates == frozenset({1, 2})
        assert result.removed_count == 0


class TestSupergraphMode:
    def test_roles_inverted(self):
        """In supergraph mode, Resultsuper supplies guaranteed answers."""
        store = make_store({1: {1, 2}, 2: {1, 2, 3}})
        pruner = CandidateSetPruner(store, query_mode="supergraph")
        result = pruner.prune(
            frozenset({1, 2, 3, 4}), outcome(result_sub=[2], result_super=[1])
        )
        # Answers of the contained cached query (serial 1) are answers of g.
        assert result.direct_answers == frozenset({1, 2})
        # Candidates must lie in the answer set of the containing query (serial 2).
        assert result.final_candidates == frozenset({3})

    def test_empty_shortcut_uses_sub_direction(self):
        store = make_store({4: set()})
        pruner = CandidateSetPruner(store, query_mode="supergraph")
        result = pruner.prune(frozenset({1, 2}), outcome(result_sub=[4]))
        assert result.shortcut == "empty"

    def test_exact_match_shortcut_still_applies(self):
        store = make_store({3: {5}})
        pruner = CandidateSetPruner(store, query_mode="supergraph")
        result = pruner.prune(frozenset({1, 2}), outcome(exact=3, result_sub=[3]))
        assert result.shortcut == "exact"
        assert result.direct_answers == frozenset({5})
