"""Journal-driven read replicas: identity, lag metrics, fan-out modes.

The invariant these tests pin: after :meth:`ReplicaSet.sync`, a follower
that applied a shard's rounds ``1..k`` holds *exactly* that shard's state
at round ``k``'s boundary — entries, per-query statistics, window, serial
counter and GCindex publication version all byte-identical (followers
apply from scratch, so even the publication counter matches; recovery is
the case that cannot pin it).  Between a shard's boundaries only the
primary moves (window fills, hits buffer for the next frame), so the
boundary is where the comparison happens — after every round for the
single-shard cache, per-shard as each shard's journal grows when sharded.

The module name carries ``concurrency`` so the suite runs under the CI
lock-sanitizer job alongside the scheduler/sharding concurrency tests.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core import GraphCacheConfig, build_cache
from repro.core.replication import CacheReplica, ReplicaSet, ReplicationFrame
from repro.core.sharding import ShardedGraphCache
from repro.exceptions import CacheError
from repro.graphs.generators import aids_like
from repro.methods import SIMethod
from repro.workloads import generate_type_a

DATASET = aids_like(scale=0.05, seed=3)
METHOD = SIMethod(DATASET, matcher="vf2plus")

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="process-mode replication requires the fork start method"
)


def _workload(count: int = 30, seed: int = 7):
    return list(
        generate_type_a(DATASET, "ZZ", count, query_sizes=(3, 5, 8), seed=seed)
    )


def _config(**overrides) -> GraphCacheConfig:
    return GraphCacheConfig(
        cache_capacity=6, window_size=3, maintenance_mode="sync", **overrides
    )


def _primary(**overrides):
    return build_cache(METHOD, _config(**overrides))


def _shards_of(cache):
    return cache.shards if isinstance(cache, ShardedGraphCache) else (cache,)


class TestBoundaryIdentity:
    def test_every_round_boundary_is_identical(self):
        primary = _primary()
        with ReplicaSet(primary, replicas=2) as replica_set:
            rounds_checked = 0
            last_round = 0
            for query in _workload():
                primary.query(query)
                if primary.plan_journal.last_round == last_round:
                    continue
                last_round = primary.plan_journal.last_round
                replica_set.sync()
                expected = replica_set.primary_digest()
                for digest in replica_set.replica_digests():
                    assert digest == expected
                rounds_checked += 1
            assert rounds_checked == 10  # 30 queries / window of 3
        primary.close()

    def test_sharded_boundaries_are_identical_per_shard(self):
        primary = _primary(shards=3)
        with ReplicaSet(primary, replicas=2) as replica_set:
            shards = _shards_of(primary)
            counts = [0] * len(shards)
            rounds_checked = 0
            for query in _workload():
                primary.query(query)
                grown = [
                    s
                    for s, shard in enumerate(shards)
                    if shard.plan_journal.last_round != counts[s]
                ]
                if not grown:
                    continue
                for s in grown:
                    counts[s] = shards[s].plan_journal.last_round
                replica_set.sync()
                expected = replica_set.primary_digest()
                for digest in replica_set.replica_digests():
                    for s in grown:
                        assert digest[s] == expected[s], f"shard {s}"
                rounds_checked += len(grown)
            assert rounds_checked == sum(counts) > 0
        primary.close()

    def test_replicated_entries_match_even_mid_window(self):
        # One extra query leaves the primary mid-window: the full digest
        # legitimately differs (window + serial), but the entries a replica
        # serves from are identical at every instant.
        primary = _primary()
        with ReplicaSet(primary, replicas=1) as replica_set:
            for query in _workload(count=31):
                primary.query(query)
            replica_set.sync()
            assert replica_set.primary_digest() != replica_set.replica_digests()[0]
            primary_entries = [
                digest["entries"]
                for digest in replica_set.primary_digest(replicated_only=True)
            ]
            replica_entries = [
                digest["entries"]
                for digest in replica_set.replica_digests(replicated_only=True)[0]
            ]
            assert primary_entries == replica_entries
        primary.close()


class TestReadPath:
    def test_replica_lookup_matches_primary_lookup(self):
        primary = _primary()
        with ReplicaSet(primary, replicas=2) as replica_set:
            workload = _workload()
            for query in workload:
                primary.query(query)
            replica_set.sync()
            for query in workload[:6]:
                assert replica_set.lookup(query) == primary.lookup(query)
        primary.close()

    def test_lookup_round_robins_over_replicas(self):
        primary = _primary()
        with ReplicaSet(primary, replicas=2) as replica_set:
            for query in _workload(count=6):
                primary.query(query)
            replica_set.sync()
            before = [f.statistics() for f in replica_set._followers]
            query = _workload(count=1, seed=11)[0]
            replica_set.lookup(query)
            replica_set.lookup(query)
            assert replica_set._cursor == 2  # one lookup per follower
            # Lookups never mutate replica state, so the digests still
            # match the primary.
            assert replica_set.replica_digests() == [
                replica_set.primary_digest()
            ] * 2
            after = [f.statistics() for f in replica_set._followers]
            assert before == after
        primary.close()


class TestLagStatistics:
    def test_synced_set_reports_zero_lag(self):
        primary = _primary()
        with ReplicaSet(primary, replicas=2) as replica_set:
            for query in _workload():
                primary.query(query)
            replica_set.sync()
            stats = replica_set.replication_statistics()
            assert [s["replica"] for s in stats] == ["replica-0", "replica-1"]
            for entry in stats:
                assert entry["mode"] == "thread"
                assert entry["rounds_shipped"] == 10
                assert entry["rounds_applied"] == 10
                assert entry["rounds_behind"] == 0
                assert entry["bytes_shipped"] == entry["bytes_applied"] > 0
                assert entry["apply_time_s"] >= 0.0
        primary.close()


@needs_fork
class TestProcessMode:
    def test_forked_followers_reach_identity(self):
        primary = _primary()
        with ReplicaSet(primary, replicas=2, mode="process") as replica_set:
            workload = _workload()
            for query in workload:
                primary.query(query)
            replica_set.sync()
            expected = replica_set.primary_digest()
            for digest in replica_set.replica_digests():
                assert digest == expected
            for query in workload[:3]:
                assert replica_set.lookup(query) == primary.lookup(query)
            stats = replica_set.replication_statistics()
            assert all(entry["rounds_behind"] == 0 for entry in stats)
            assert all(entry["mode"] == "process" for entry in stats)
        primary.close()


class TestGuards:
    def test_primary_must_be_fresh(self):
        primary = _primary()
        try:
            for query in _workload(count=3):
                primary.query(query)
            assert primary.plan_journal.last_round > 0
            with pytest.raises(CacheError, match="before the primary applies"):
                ReplicaSet(primary, replicas=1)
        finally:
            primary.close()

    def test_replica_count_and_mode_validated(self):
        primary = _primary()
        try:
            with pytest.raises(CacheError, match="at least one replica"):
                ReplicaSet(primary, replicas=0)
            with pytest.raises(CacheError, match="unknown replication mode"):
                ReplicaSet(primary, replicas=1, mode="carrier-pigeon")
        finally:
            primary.close()

    def test_audit_only_records_cannot_become_frames(self):
        primary = _primary()
        try:
            for query in _workload(count=3):
                primary.query(query)
            record = dict(primary.plan_journal.records()[0])
            assert record["admitted_serials"]
            record.pop("admitted_entries")
            with pytest.raises(CacheError, match="predates replication frames"):
                ReplicationFrame.from_record(record)
        finally:
            primary.close()

    def test_detached_set_stops_shipping(self):
        primary = _primary()
        replica_set = ReplicaSet(primary, replicas=1)
        for query in _workload(count=6):
            primary.query(query)
        replica_set.sync()
        applied = replica_set.replication_statistics()[0]["rounds_applied"]
        replica_set.close()
        for query in _workload(count=6, seed=11):
            primary.query(query)
        assert primary.plan_journal.last_round > applied
        primary.close()


class TestCacheReplica:
    def test_follower_config_never_journals_or_persists(self, tmp_path):
        config = GraphCacheConfig(
            cache_capacity=6,
            window_size=3,
            maintenance_mode="background",
            journal_path=str(tmp_path / "journal.jsonl"),
            journal_fsync=True,
        )
        replica = CacheReplica(METHOD, config)
        try:
            follower = replica.cache.config
            assert follower.journal_path is None
            assert follower.journal_fsync is False
            assert follower.backend == "memory"
            assert follower.maintenance_mode == "sync"
        finally:
            replica.close()
