"""Race surface of background maintenance scheduling (ISSUE-5).

Three properties are pinned (auto-marked ``concurrency``; CI runs this module
as its background-mode race smoke with ``PYTHONHASHSEED=0``):

1. **Snapshot reads under a held apply** — with the background worker parked
   *inside* an apply (store delta done, GCindex batch mutated but not yet
   published), 8 threads keep querying the cache: every query completes
   without blocking, answers exactly what Method M alone would return, and
   reads the previously published GCindex snapshot (the publication version
   is unchanged while the apply is held — deterministic counters, no
   wall-clock).
2. **sync ≡ barrier at every barrier point** — after every single query, the
   two modes agree on the answer set, the deterministic work counters and
   the byte-identical plan journal.
3. **Sharded background race smoke** — ``shards=4`` with
   ``maintenance_mode="background"`` under 8 hammering threads: no crash, no
   capacity overflow, correct answers, and a clean drain.
"""

from __future__ import annotations

import threading

from repro.core import GraphCache, GraphCacheConfig, build_cache
from repro.graphs.generators import aids_like
from repro.methods import SIMethod, execute_query
from repro.workloads import generate_type_a

DATASET = aids_like(scale=0.05, seed=2)
THREADS = 8


def _workload(count: int, seed: int):
    return list(
        generate_type_a(DATASET, "ZZ", count, query_sizes=(3, 5, 8), seed=seed)
    )


def _expected_answers(method, workload):
    expected = {}
    for query in workload:
        if query not in expected:
            expected[query] = execute_query(method, query).answer_ids
    return expected


def _gc_index(cache: GraphCache):
    """The cache's GCindex, via the public pipeline accessors."""
    return cache.pipeline.stages[1].processors.index


class TestHeldApplySnapshotReads:
    def test_queries_served_mid_apply_read_published_snapshot(self):
        method = SIMethod(DATASET, matcher="vf2plus")
        workload = _workload(48, seed=17)
        expected = _expected_answers(method, workload)
        cache = build_cache(
            method,
            GraphCacheConfig(
                cache_capacity=6, window_size=3, maintenance_mode="background"
            ),
        )
        index = _gc_index(cache)

        held = threading.Event()
        release = threading.Event()
        held_plans = []

        def hold_first_apply(plan):
            # Park only the first round; later rounds run through freely.
            if not held_plans:
                held_plans.append(plan)
                held.set()
                assert release.wait(timeout=60), "test did not release the apply"

        cache.maintenance_engine.apply_hold_hook = hold_first_apply

        try:
            # Fill the first window; the worker parks inside its apply.
            feed = iter(workload)
            while not held.is_set():
                cache.query(next(feed))
            version_during_hold = index.version
            plan = held_plans[0]

            # The apply is held pre-publication: the round's admissions are
            # *not* visible in the index — lookups read the old snapshot.
            assert all(s not in index.serials() for s in plan.admitted_serials)

            remaining = list(feed)
            chunks = [remaining[i::THREADS] for i in range(THREADS)]
            barrier = threading.Barrier(THREADS)
            failures: list = []
            versions_seen: set = set()

            def worker(chunk):
                try:
                    barrier.wait(timeout=30)
                    for query in chunk:
                        versions_seen.add(index.version)
                        result = cache.query(query)
                        if result.answer_ids != expected[query]:
                            failures.append(("wrong answers", result.serial))
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    failures.append(exc)

            threads = [
                threading.Thread(target=worker, args=(chunk,), name=f"mid-apply-{i}")
                for i, chunk in enumerate(chunks)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not any(thread.is_alive() for thread in threads)
            assert failures == []
            # Every lookup that ran while the apply was held read the same
            # published snapshot: the version never moved under them.
            assert versions_seen == {version_during_hold}
            assert index.version == version_during_hold

            release.set()
            cache.maintenance_engine.apply_hold_hook = None
            cache.drain_maintenance()
            # Publication resumed: the held round (and the rounds queued up
            # behind it) are now applied and journaled.
            assert index.version > version_during_hold
            counters = cache.maintenance_scheduler.counters
            assert counters.rounds == len(cache.plan_journal)
            assert counters.inline_rounds == 0
        finally:
            release.set()
            cache.close()


class TestSyncBarrierEquivalence:
    def test_identity_at_every_barrier_point(self):
        workload = _workload(36, seed=5)
        config = GraphCacheConfig(cache_capacity=6, window_size=3)
        sync_cache = GraphCache(
            SIMethod(DATASET, matcher="vf2plus"),
            config.with_maintenance_mode("sync"),
        )
        barrier_cache = GraphCache(
            SIMethod(DATASET, matcher="vf2plus"),
            config.with_maintenance_mode("barrier"),
        )
        try:
            for query in workload:
                sync_result = sync_cache.query(query)
                barrier_result = barrier_cache.query(query)
                # Every barrier point: identical answers and work counters.
                assert barrier_result.answer_ids == sync_result.answer_ids
                assert barrier_result.subiso_tests == sync_result.subiso_tests
                assert (
                    barrier_result.containment_tests
                    == sync_result.containment_tests
                )
                assert barrier_result.shortcut == sync_result.shortcut
                sync_runtime = sync_cache.runtime_statistics
                barrier_runtime = barrier_cache.runtime_statistics
                assert (
                    barrier_runtime.subiso_tests_alleviated
                    == sync_runtime.subiso_tests_alleviated
                )
                assert (
                    barrier_runtime.containment_tests
                    == sync_runtime.containment_tests
                )
                # ... and a byte-identical plan journal so far.
                assert (
                    barrier_cache.plan_journal.dumps()
                    == sync_cache.plan_journal.dumps()
                )
            assert len(sync_cache.plan_journal) > 0
        finally:
            sync_cache.close()
            barrier_cache.close()


class TestShardedBackgroundRaceSmoke:
    def test_shards4_background_8_threads(self):
        method = SIMethod(DATASET, matcher="vf2plus")
        workload = _workload(48, seed=23)
        expected = _expected_answers(method, workload)
        cache = build_cache(
            method,
            GraphCacheConfig(
                cache_capacity=6,
                window_size=3,
                shards=4,
                maintenance_mode="background",
            ),
        )
        try:
            chunks = [list(workload)[i::THREADS] for i in range(THREADS)]
            barrier = threading.Barrier(THREADS)
            failures: list = []

            def worker(chunk):
                try:
                    barrier.wait(timeout=30)
                    for query in chunk:
                        result = cache.query(query)
                        if result.answer_ids != expected[query]:
                            failures.append(("wrong answers", result.serial))
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    failures.append(exc)

            threads = [
                threading.Thread(target=worker, args=(chunk,), name=f"bg-shard-{i}")
                for i, chunk in enumerate(chunks)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not any(thread.is_alive() for thread in threads)
            assert failures == []
            cache.drain_maintenance()
            assert cache.runtime_statistics.queries_processed == len(workload)
            assert len(cache) <= 4 * 6
            total_rounds = sum(
                scheduler.counters.rounds
                for scheduler in cache.maintenance_schedulers()
            )
            assert total_rounds == sum(len(j) for j in cache.plan_journals())
            assert total_rounds > 0
            assert all(
                scheduler.counters.inline_rounds == 0
                for scheduler in cache.maintenance_schedulers()
            )
        finally:
            cache.close()
