"""Concurrency guarantees of the staged query pipeline.

Two properties are pinned here (the ISSUE-2 hard invariant):

1. **Serial/concurrent equivalence** — for any workload,
   ``GraphCacheService.query_many(jobs>1)`` returns byte-identical answer
   sets and identical deterministic work counters
   (``subiso_tests_alleviated``, ``containment_tests``, ...) to a serial
   loop of ``GraphCache.query``.  This holds by construction: Mfilter is
   cache-state independent, and the GC stages execute in submission order.
2. **Race safety** — many threads hammering one shared cache never crash it,
   never overflow its capacity, and every individual answer set still equals
   what Method M alone would return (the paper's correctness guarantee is
   cache-state independent, so it must survive any interleaving).

These tests are auto-marked ``concurrency`` (see ``tests/conftest.py``) so CI
can run them as a dedicated job with a pinned ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import functools
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import GraphCache, GraphCacheConfig, GraphCacheService
from repro.core.pipeline import STAGE_NAMES
from repro.exceptions import CacheError
from repro.graphs.generators import aids_like
from repro.methods import SIMethod, execute_query
from repro.workloads import generate_type_a


@functools.lru_cache(maxsize=4)
def _dataset(seed: int):
    """Small AIDS-like dataset, cached so hypothesis examples stay fast."""
    return aids_like(scale=0.05, seed=seed)


def _counters(cache: GraphCache) -> dict:
    """The deterministic work counters the equivalence invariant pins."""
    runtime = cache.runtime_statistics
    return {
        "queries_processed": runtime.queries_processed,
        "subiso_tests": runtime.subiso_tests,
        "subiso_tests_alleviated": runtime.subiso_tests_alleviated,
        "containment_tests": runtime.containment_tests,
        "containment_memo_hits": runtime.containment_memo_hits,
        "cache_hits": runtime.cache_hits,
        "exact_hits": runtime.exact_hits,
        "empty_shortcuts": runtime.empty_shortcuts,
    }


class TestSerialConcurrentEquivalence:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        window=st.sampled_from([2, 3, 5]),
        jobs=st.sampled_from([2, 4]),
    )
    def test_query_many_matches_serial(self, seed: int, window: int, jobs: int) -> None:
        dataset = _dataset(seed % 3)
        workload = generate_type_a(
            dataset, "ZZ", 14, query_sizes=(3, 5, 8), seed=seed
        )
        config = GraphCacheConfig(cache_capacity=6, window_size=window)

        serial_cache = GraphCache(SIMethod(dataset, matcher="vf2plus"), config)
        serial_results = [serial_cache.query(query) for query in workload]

        service = GraphCacheService.for_method(
            SIMethod(dataset, matcher="vf2plus"), config
        )
        concurrent_results = service.query_many(list(workload), jobs=jobs)

        assert len(concurrent_results) == len(serial_results)
        for serial, concurrent in zip(serial_results, concurrent_results, strict=True):
            assert concurrent.answer_ids == serial.answer_ids
            assert concurrent.method_candidates == serial.method_candidates
            assert concurrent.final_candidates == serial.final_candidates
            assert concurrent.subiso_tests == serial.subiso_tests
            assert concurrent.containment_tests == serial.containment_tests
            assert concurrent.shortcut == serial.shortcut
            assert concurrent.short_circuit_stage == serial.short_circuit_stage
        assert _counters(service.cache) == _counters(serial_cache)

    def test_parallel_stage_mode_matches_serial(self) -> None:
        """execution_mode='parallel' (Mfilter ∥ processors) changes nothing."""
        dataset = _dataset(1)
        workload = generate_type_a(dataset, "ZZ", 16, query_sizes=(3, 5), seed=9)

        serial_cache = GraphCache(
            SIMethod(dataset, matcher="vf2plus"),
            GraphCacheConfig(cache_capacity=5, window_size=2),
        )
        parallel_cache = GraphCache(
            SIMethod(dataset, matcher="vf2plus"),
            GraphCacheConfig(
                cache_capacity=5, window_size=2, execution_mode="parallel"
            ),
        )
        assert parallel_cache.pipeline.parallel_filter

        for query in workload:
            serial = serial_cache.query(query)
            parallel = parallel_cache.query(query)
            assert parallel.answer_ids == serial.answer_ids
            assert parallel.subiso_tests == serial.subiso_tests
        assert _counters(parallel_cache) == _counters(serial_cache)

    def test_jobs_must_be_positive(self) -> None:
        service = GraphCacheService.for_method(
            SIMethod(_dataset(0), matcher="vf2plus")
        )
        with pytest.raises(CacheError):
            service.query_many([], jobs=0)


class TestStageAccounting:
    def test_stage_times_and_short_circuit(self) -> None:
        dataset = _dataset(0)
        cache = GraphCache(
            SIMethod(dataset, matcher="vf2plus"),
            GraphCacheConfig(cache_capacity=4, window_size=1),
        )
        assert cache.pipeline.stage_names == STAGE_NAMES

        query = list(generate_type_a(dataset, "ZZ", 2, query_sizes=(4,), seed=3))[0]
        first = cache.query(query)
        assert set(STAGE_NAMES) <= set(first.stage_times)
        assert all(elapsed >= 0.0 for elapsed in first.stage_times.values())
        assert first.short_circuit_stage is None

        second = cache.query(query)
        assert second.shortcut == "exact"
        assert second.short_circuit_stage == "prune"
        assert second.subiso_tests == 0

    def test_shared_containment_matcher(self) -> None:
        """The configured matcher is resolved once and shared by the stages."""
        method = SIMethod(_dataset(0), matcher="vf2plus")
        cache = GraphCache(method)
        assert cache.containment_matcher is method.matcher

        named = GraphCache(method, GraphCacheConfig(containment_matcher="vf2"))
        assert named.containment_matcher is not method.matcher
        assert named.containment_matcher.name == "vf2"


class TestRaceSmoke:
    THREADS = 8

    @pytest.mark.parametrize("execution_mode", ["serial", "parallel"])
    def test_threads_hammer_one_shared_cache(self, execution_mode: str) -> None:
        dataset = _dataset(2)
        method = SIMethod(dataset, matcher="vf2plus")
        workload = generate_type_a(
            dataset, "ZZ", 48, query_sizes=(3, 5, 8), seed=17
        )
        expected = {}
        for query in workload:
            if query not in expected:
                expected[query] = execute_query(method, query).answer_ids

        cache = GraphCache(
            method,
            GraphCacheConfig(
                cache_capacity=6, window_size=3, execution_mode=execution_mode
            ),
        )
        queries = list(workload)
        chunks = [queries[i :: self.THREADS] for i in range(self.THREADS)]
        barrier = threading.Barrier(self.THREADS)
        failures: list = []

        def worker(chunk) -> None:
            try:
                barrier.wait(timeout=30)
                for query in chunk:
                    result = cache.query(query)
                    if result.answer_ids != expected[query]:
                        failures.append(
                            ("wrong answers", result.serial, result.answer_ids)
                        )
            except Exception as exc:  # noqa: BLE001 - surfaced via `failures`
                failures.append(exc)

        threads = [
            threading.Thread(target=worker, args=(chunk,), name=f"hammer-{i}")
            for i, chunk in enumerate(chunks)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(thread.is_alive() for thread in threads)
        assert failures == []
        assert cache.runtime_statistics.queries_processed == len(queries)
        assert len(cache) <= 6
