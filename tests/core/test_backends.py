"""Contract suite for the pluggable storage backends (and their facades).

Every backend must expose dict-like observable semantics — keyed access,
insertion-ordered iteration, atomic ``replace_all`` — so that switching the
data layer never changes replacement decisions or work counters.  The suite
runs identically against :class:`InMemoryBackend`, :class:`SQLiteBackend`
and :class:`MmapBackend` (in-memory and file-based), which is the "every
backend passes the same store contract suite as InMemory" acceptance
criterion.
"""

from __future__ import annotations

import pytest

from repro.core.backends import (
    AVAILABLE_BACKENDS,
    InMemoryBackend,
    MmapBackend,
    SQLiteBackend,
    create_backend,
)
from repro.core.stores import (
    CacheEntry,
    CacheEntryCodec,
    CacheStore,
    WindowEntry,
    WindowEntryCodec,
    WindowStore,
)
from repro.exceptions import CacheError
from repro.graphs.graph import Graph


def cache_entry(serial, answers=(0,)):
    return CacheEntry(
        serial=serial,
        query=Graph(labels=["C", "O"], edges=[(0, 1)], graph_id=serial),
        answer_ids=frozenset(answers),
    )


BACKEND_FACTORIES = {
    "memory": lambda tmp_path: InMemoryBackend(CacheEntryCodec()),
    "sqlite-memory": lambda tmp_path: SQLiteBackend(CacheEntryCodec()),
    "sqlite-file": lambda tmp_path: SQLiteBackend(
        CacheEntryCodec(), path=str(tmp_path / "store.db")
    ),
    "mmap-memory": lambda tmp_path: MmapBackend(CacheEntryCodec()),
    "mmap-file": lambda tmp_path: MmapBackend(
        CacheEntryCodec(), path=str(tmp_path / "store")
    ),
}


@pytest.fixture(params=sorted(BACKEND_FACTORIES))
def backend(request, tmp_path):
    instance = BACKEND_FACTORIES[request.param](tmp_path)
    yield instance
    instance.close()


class TestBackendContract:
    def test_put_get_contains_delete(self, backend):
        assert backend.get(1) is None
        backend.put(1, cache_entry(1))
        assert backend.contains(1)
        assert 1 in backend
        assert backend.get(1).serial == 1
        assert backend.get(1).answer_ids == frozenset({0})
        assert backend.delete(1)
        assert not backend.delete(1)
        assert not backend.contains(1)

    def test_put_overwrites_in_place(self, backend):
        backend.put(1, cache_entry(1, answers=(0,)))
        backend.put(2, cache_entry(2))
        backend.put(1, cache_entry(1, answers=(3, 4)))
        assert backend.get(1).answer_ids == frozenset({3, 4})
        # Overwriting keeps the original position, like a Python dict.
        assert backend.serials() == [1, 2]

    def test_insertion_order_preserved(self, backend):
        for serial in (5, 2, 9, 1):
            backend.put(serial, cache_entry(serial))
        assert backend.serials() == [5, 2, 9, 1]
        assert [entry.serial for entry in backend.entries()] == [5, 2, 9, 1]

    def test_count_and_len(self, backend):
        assert backend.count() == len(backend) == 0
        backend.put(1, cache_entry(1))
        backend.put(2, cache_entry(2))
        assert backend.count() == len(backend) == 2

    def test_replace_all_resets_contents_and_order(self, backend):
        backend.put(1, cache_entry(1))
        backend.put(2, cache_entry(2))
        backend.replace_all((s, cache_entry(s)) for s in (7, 3))
        assert backend.serials() == [7, 3]
        assert not backend.contains(1)
        # Insertions after a swap continue the order.
        backend.put(11, cache_entry(11))
        assert backend.serials() == [7, 3, 11]

    def test_clear(self, backend):
        backend.put(1, cache_entry(1))
        backend.clear()
        assert backend.count() == 0
        assert backend.serials() == []

    def test_dump_records_round_trip(self, backend):
        for serial in (4, 2):
            backend.put(serial, cache_entry(serial, answers=(serial, 0)))
        records = backend.dump_records()
        assert [record["serial"] for record in records] == [4, 2]
        decoded = [CacheEntryCodec.decode(record) for record in records]
        assert decoded == backend.entries()


class TestSQLiteDurability:
    def test_file_backend_survives_reopen(self, tmp_path):
        path = str(tmp_path / "durable.db")
        backend = SQLiteBackend(CacheEntryCodec(), path=path)
        backend.put(3, cache_entry(3, answers=(1, 2)))
        backend.put(1, cache_entry(1))
        backend.close()

        reopened = SQLiteBackend(CacheEntryCodec(), path=path)
        assert reopened.serials() == [3, 1]
        assert reopened.get(3).answer_ids == frozenset({1, 2})
        reopened.close()

    def test_two_tables_share_one_file(self, tmp_path):
        path = str(tmp_path / "shared.db")
        cache_backend = SQLiteBackend(CacheEntryCodec(), path=path, table="cache_entries")
        window_backend = SQLiteBackend(
            WindowEntryCodec(), path=path, table="window_entries"
        )
        cache_backend.put(1, cache_entry(1))
        window_backend.put(1, WindowEntry(1, cache_entry(1).query, frozenset({0}), 0.1, 0.2))
        assert cache_backend.count() == 1
        assert window_backend.count() == 1
        assert isinstance(window_backend.get(1), WindowEntry)
        cache_backend.close()
        window_backend.close()

    def test_invalid_table_name_rejected(self):
        with pytest.raises(ValueError):
            SQLiteBackend(CacheEntryCodec(), table="entries; DROP TABLE x")


class TestFactory:
    def test_available_backends(self):
        assert AVAILABLE_BACKENDS == ("memory", "sqlite", "mmap")

    def test_create_by_name(self, tmp_path):
        assert isinstance(create_backend("memory", CacheEntryCodec()), InMemoryBackend)
        sqlite_backend = create_backend(
            "sqlite", CacheEntryCodec(), path=str(tmp_path / "x.db")
        )
        assert isinstance(sqlite_backend, SQLiteBackend)
        mmap_backend = create_backend(
            "mmap", CacheEntryCodec(), path=str(tmp_path / "x")
        )
        assert isinstance(mmap_backend, MmapBackend)
        sqlite_backend.close()
        mmap_backend.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(CacheError):
            create_backend("redis", CacheEntryCodec())


@pytest.fixture(params=["memory", "sqlite", "mmap"])
def store_backend_kind(request):
    return request.param


class TestStoreFacadesOverBackends:
    """CacheStore/WindowStore behave identically over every backend."""

    def test_cache_store_contract(self, store_backend_kind):
        store = CacheStore(
            2, backend=create_backend(store_backend_kind, CacheEntryCodec())
        )
        store.add(cache_entry(1))
        assert 1 in store and len(store) == 1 and not store.is_full
        assert store.free_slots() == 1
        store.add(cache_entry(2))
        assert store.is_full
        with pytest.raises(CacheError):
            store.add(cache_entry(3))
        with pytest.raises(CacheError):
            store.add(cache_entry(1))
        assert store.get(2).serial == 2
        with pytest.raises(CacheError):
            store.get(99)
        assert store.evict(1).serial == 1
        with pytest.raises(CacheError):
            store.evict(1)
        store.replace_contents([cache_entry(5), cache_entry(6)])
        assert store.serials() == [5, 6]
        store.close()

    def test_window_store_contract(self, store_backend_kind):
        store = WindowStore(
            2, backend=create_backend(store_backend_kind, WindowEntryCodec())
        )
        query = Graph(labels=["C", "O"], edges=[(0, 1)])

        def window_entry(serial):
            return WindowEntry(serial, query, frozenset({0}), 0.1, 1.0)

        store.add(window_entry(2))
        store.add(window_entry(1))
        assert store.is_full
        with pytest.raises(CacheError):
            store.add(window_entry(3))
        assert [entry.serial for entry in store.entries()] == [1, 2]
        drained = store.drain()
        assert [entry.serial for entry in drained] == [1, 2]
        assert len(store) == 0
        store.close()

    def test_facade_actually_uses_the_given_backend(self, store_backend_kind):
        """Regression: an *empty* backend is falsy (it has __len__); the
        facade must keep it anyway rather than silently defaulting."""
        backend = create_backend(store_backend_kind, CacheEntryCodec())
        store = CacheStore(2, backend=backend)
        assert store.backend is backend
        window_backend = create_backend(store_backend_kind, WindowEntryCodec())
        window = WindowStore(2, backend=window_backend)
        assert window.backend is window_backend
        store.close()
        window.close()

    def test_sqlite_facade_is_durable_across_reopen(self, tmp_path):
        """Entries added through the facade survive into a new process-like
        reopen of the same database file (write-through, not a snapshot)."""
        path = str(tmp_path / "facade.db")
        store = CacheStore(
            3, backend=SQLiteBackend(CacheEntryCodec(), path=path, table="cache_entries")
        )
        store.add(cache_entry(1, answers=(0, 4)))
        store.add(cache_entry(2))
        store.close()
        reopened = CacheStore(
            3, backend=SQLiteBackend(CacheEntryCodec(), path=path, table="cache_entries")
        )
        assert reopened.serials() == [1, 2]
        assert reopened.get(1).answer_ids == frozenset({0, 4})
        reopened.close()

    def test_cache_store_snapshot_round_trip(self, store_backend_kind, tmp_path):
        store = CacheStore(
            3, backend=create_backend(store_backend_kind, CacheEntryCodec())
        )
        store.add(cache_entry(1, answers=(0, 2)))
        store.add(cache_entry(2))
        path = tmp_path / "store.json"
        store.save(path)
        # A snapshot taken over one backend loads into any other.
        other_kind = "memory" if store_backend_kind == "sqlite" else "sqlite"
        loaded = CacheStore.load(
            path, backend=create_backend(other_kind, CacheEntryCodec())
        )
        assert loaded.serials() == [1, 2]
        assert loaded.get(1).answer_ids == frozenset({0, 2})
        store.close()
        loaded.close()
