"""Tests for the cache admission controller (§6.2)."""

from __future__ import annotations


from repro.core.policies import AdmissionController
from repro.core.stores import WindowEntry
from repro.graphs.graph import Graph


def entry(serial, verify, filter_=1.0):
    return WindowEntry(
        serial=serial,
        query=Graph(labels=["C"], edges=[]),
        answer_ids=frozenset(),
        filter_time_s=filter_,
        verify_time_s=verify,
    )


class TestDisabledController:
    def test_everything_admitted_when_disabled(self):
        controller = AdmissionController(enabled=False)
        assert controller.admit(entry(1, verify=0.0))
        assert controller.admit(entry(2, verify=100.0))

    def test_observe_window_noop_when_disabled(self):
        controller = AdmissionController(enabled=False)
        controller.observe_window([entry(1, verify=5.0)])
        assert controller.threshold is None


class TestExplicitThreshold:
    def test_threshold_filters_cheap_queries(self):
        controller = AdmissionController(enabled=True, threshold=2.0)
        assert controller.calibrated
        assert not controller.admit(entry(1, verify=1.0))   # expensiveness 1 < 2
        assert controller.admit(entry(2, verify=5.0))        # expensiveness 5 >= 2

    def test_zero_threshold_disables_filtering(self):
        """Paper: 'a threshold value of 0 disables this component'."""
        controller = AdmissionController(enabled=True, threshold=0.0)
        assert controller.admit(entry(1, verify=0.0))
        assert controller.admit(entry(2, verify=100.0))

    def test_explicit_threshold_not_overwritten_by_observation(self):
        controller = AdmissionController(enabled=True, threshold=2.0)
        controller.observe_window([entry(i, verify=100.0) for i in range(10)])
        assert controller.threshold == 2.0


class TestCalibration:
    def test_admits_everything_while_calibrating(self):
        controller = AdmissionController(enabled=True, calibration_windows=2)
        assert not controller.calibrated
        assert controller.admit(entry(1, verify=0.01))

    def test_threshold_fixed_after_calibration_windows(self):
        controller = AdmissionController(
            enabled=True, expensive_fraction=0.25, calibration_windows=2
        )
        window1 = [entry(i, verify=float(i)) for i in range(1, 11)]
        window2 = [entry(i + 10, verify=float(i)) for i in range(1, 11)]
        controller.observe_window(window1)
        assert not controller.calibrated
        controller.observe_window(window2)
        assert controller.calibrated
        # Roughly the top quarter of observed ratios should pass.
        admitted = [e for e in window2 if controller.admit(e)]
        assert 1 <= len(admitted) <= 4

    def test_filter_admitted_preserves_order(self):
        controller = AdmissionController(enabled=True, threshold=3.0)
        entries = [entry(1, verify=5.0), entry(2, verify=1.0), entry(3, verify=9.0)]
        assert [e.serial for e in controller.filter_admitted(entries)] == [1, 3]

    def test_calibration_ignores_infinite_ratios(self):
        controller = AdmissionController(
            enabled=True, expensive_fraction=0.5, calibration_windows=1
        )
        controller.observe_window(
            [entry(1, verify=1.0, filter_=0.0), entry(2, verify=4.0), entry(3, verify=1.0)]
        )
        assert controller.calibrated
        assert controller.threshold != float("inf")

    def test_calibration_with_no_observations_gives_zero_threshold(self):
        controller = AdmissionController(enabled=True, calibration_windows=1)
        controller.observe_window([])
        assert controller.threshold == 0.0
        assert controller.admit(entry(1, verify=0.001))

    def test_higher_fraction_admits_more(self):
        scores = [entry(i, verify=float(i)) for i in range(1, 21)]
        strict = AdmissionController(enabled=True, expensive_fraction=0.1, calibration_windows=1)
        lenient = AdmissionController(enabled=True, expensive_fraction=0.8, calibration_windows=1)
        strict.observe_window(scores)
        lenient.observe_window(scores)
        assert len(lenient.filter_admitted(scores)) >= len(strict.filter_admitted(scores))
