"""Behavioural tests of GraphCache: hits, shortcuts, statistics, maintenance."""

from __future__ import annotations

import pytest

from repro.core.cache import GraphCache
from repro.core.config import GraphCacheConfig
from repro.graphs.graph import Graph
from repro.methods import SIMethod
from repro.workloads import generate_type_a


@pytest.fixture
def small_cache(handmade_dataset):
    method = SIMethod(handmade_dataset, matcher="vf2plus")
    return GraphCache(method, GraphCacheConfig(cache_capacity=4, window_size=1))


CC_EDGE = Graph(labels=["C", "C"], edges=[(0, 1)])
CCO_PATH = Graph(labels=["C", "C", "O"], edges=[(0, 1), (1, 2)])
CCON_PATH = Graph(labels=["C", "C", "O", "N"], edges=[(0, 1), (1, 2), (2, 3)])
SS_EDGE = Graph(labels=["S", "S"], edges=[(0, 1)])


class TestCacheHits:
    def test_exact_match_hit_skips_verification(self, small_cache):
        first = small_cache.query(CCO_PATH)
        assert first.subiso_tests > 0
        second = small_cache.query(CCO_PATH)
        assert second.shortcut == "exact"
        assert second.subiso_tests == 0
        assert second.answer_ids == first.answer_ids
        assert small_cache.runtime_statistics.exact_hits == 1

    def test_subgraph_hit_after_larger_query(self, small_cache):
        small_cache.query(CCON_PATH)
        result = small_cache.query(CCO_PATH)
        assert result.sub_hits >= 1
        assert result.cache_hit

    def test_supergraph_hit_after_smaller_query(self, small_cache):
        small_cache.query(CC_EDGE)
        result = small_cache.query(CCON_PATH)
        assert result.super_hits >= 1

    def test_empty_answer_shortcut(self, handmade_dataset):
        method = SIMethod(handmade_dataset, matcher="vf2plus")
        cache = GraphCache(method, GraphCacheConfig(cache_capacity=4, window_size=1))
        # S-S has no answers in the handmade dataset; cache it first.
        first = cache.query(SS_EDGE)
        assert first.answer_ids == frozenset()
        # A query containing S-S can then be answered without any sub-iso test.
        bigger = Graph(labels=["S", "S", "C"], edges=[(0, 1), (1, 2)])
        result = cache.query(bigger)
        assert result.shortcut == "empty"
        assert result.answer_ids == frozenset()
        assert result.subiso_tests == 0
        assert cache.runtime_statistics.empty_shortcuts == 1

    def test_no_hit_for_unrelated_query(self, small_cache):
        small_cache.query(CCO_PATH)
        result = small_cache.query(SS_EDGE)
        assert not result.cache_hit

    def test_window_queries_not_yet_hittable(self, handmade_dataset):
        """Queries still in the Window (window not full) do not produce hits."""
        method = SIMethod(handmade_dataset, matcher="vf2plus")
        cache = GraphCache(method, GraphCacheConfig(cache_capacity=4, window_size=10))
        cache.query(CCO_PATH)
        result = cache.query(CCO_PATH)
        assert result.shortcut is None
        assert not result.cache_hit


class TestStatisticsFlow:
    def test_contributions_recorded_for_cached_query(self, small_cache):
        first = small_cache.query(CCON_PATH)
        small_cache.query(CCO_PATH)
        stats = small_cache.statistics_manager.snapshot(first.serial)
        assert stats.hits >= 1
        assert stats.last_hit_serial == 2

    def test_runtime_statistics_accumulate(self, small_cache):
        small_cache.query(CCO_PATH)
        small_cache.query(CCO_PATH)
        runtime = small_cache.runtime_statistics
        assert runtime.queries_processed == 2
        assert runtime.cache_hits == 1
        assert runtime.subiso_tests > 0
        payload = runtime.as_dict()
        assert payload["queries_processed"] == 2

    def test_results_history(self, small_cache):
        small_cache.query(CCO_PATH)
        small_cache.query(CC_EDGE)
        results = small_cache.results()
        assert len(results) == 2
        assert results[0].serial == 1
        assert results[1].serial == 2

    def test_answer_convenience_wrapper(self, small_cache, handmade_dataset):
        answers = small_cache.answer(CC_EDGE)
        expected = frozenset(
            g.graph_id
            for g in handmade_dataset
            if small_cache.method.matcher.is_subgraph(CC_EDGE, g)
        )
        assert answers == expected


class TestCacheManagement:
    def test_cache_capacity_never_exceeded(self, handmade_dataset):
        method = SIMethod(handmade_dataset, matcher="vf2plus")
        cache = GraphCache(method, GraphCacheConfig(cache_capacity=2, window_size=1))
        queries = [CC_EDGE, CCO_PATH, CCON_PATH, SS_EDGE, CCO_PATH]
        for query in queries:
            cache.query(query)
            assert len(cache) <= 2

    def test_maintenance_time_reported_on_window_boundary(self, handmade_dataset):
        method = SIMethod(handmade_dataset, matcher="vf2plus")
        cache = GraphCache(method, GraphCacheConfig(cache_capacity=4, window_size=2))
        first = cache.query(CC_EDGE)
        second = cache.query(CCO_PATH)
        assert first.maintenance_time_s == 0.0
        assert second.maintenance_time_s > 0.0
        assert cache.window_manager.reports

    def test_cached_entry_accessible(self, small_cache):
        result = small_cache.query(CCO_PATH)
        entry = small_cache.cached_entry(result.serial)
        assert entry.query == CCO_PATH
        assert entry.answer_ids == result.answer_ids
        assert result.serial in small_cache.cached_serials

    def test_cache_size_bytes_grows(self, small_cache):
        empty_size = small_cache.cache_size_bytes()
        small_cache.query(CCON_PATH)
        small_cache.query(CCO_PATH)
        assert small_cache.cache_size_bytes() >= empty_size

    def test_eviction_under_pressure(self, tiny_dataset):
        method = SIMethod(tiny_dataset, matcher="vf2plus")
        cache = GraphCache(
            method,
            GraphCacheConfig(cache_capacity=3, window_size=2, replacement_policy="pin"),
        )
        workload = generate_type_a(tiny_dataset, "ZZ", 20, query_sizes=(3, 5, 7), seed=6)
        for query in workload:
            cache.query(query)
        assert len(cache) <= 3
        evictions = sum(len(r.evicted_serials) for r in cache.window_manager.reports)
        assert evictions > 0

    def test_total_time_includes_all_components(self, small_cache):
        result = small_cache.query(CCON_PATH)
        assert result.total_time_s == pytest.approx(
            result.filter_time_s + result.gc_filter_time_s + result.verify_time_s
        )
