"""Mmap-backend specifics beyond the shared storage contract suite.

``tests/core/test_backends.py`` already runs :class:`MmapBackend` through
the full backend contract; this module pins the arena-specific lifecycle —
seal/attach warm starts, dead-extent reclamation, the sidecar format, the
transactional delta, and the snapshot records carrying arena addresses.
"""

from __future__ import annotations

import json

import pytest

from repro.core.backends import MmapBackend
from repro.core.stores import (
    CacheEntry,
    CacheEntryCodec,
    WindowEntry,
    WindowEntryCodec,
)
from repro.exceptions import CacheError
from repro.graphs.graph import Graph


def entry(serial, answers=(0,), order=2):
    labels = ["C", "O", "N", "S"][:order] if order <= 4 else ["C"] * order
    edges = [(i, i + 1) for i in range(order - 1)]
    return CacheEntry(
        serial=serial,
        query=Graph(labels=labels, edges=edges, graph_id=serial),
        answer_ids=frozenset(answers),
    )


def make_backend(tmp_path, table="entries"):
    return MmapBackend(CacheEntryCodec(), path=str(tmp_path / "store"), table=table)


class TestSealAttach:
    def test_seal_then_attach_adopts_entries(self, tmp_path):
        backend = make_backend(tmp_path)
        originals = [entry(serial, answers=(serial,)) for serial in (1, 2, 3)]
        for item in originals:
            backend.put(item.serial, item)
        backend.seal()
        backend.close()

        attached = make_backend(tmp_path)
        assert attached.serials() == [1, 2, 3]
        for original in originals:
            adopted = attached.get(original.serial)
            assert adopted == original
            assert adopted.query.graph_id == original.serial
        attached.close()

    def test_sealed_reads_keep_working_in_the_sealing_process(self, tmp_path):
        backend = make_backend(tmp_path)
        backend.put(1, entry(1))
        backend.seal()
        assert backend.get(1) == entry(1)
        backend.close()

    def test_seal_requires_backend_path(self):
        backend = MmapBackend(CacheEntryCodec())
        backend.put(1, entry(1))
        with pytest.raises(CacheError):
            backend.seal()
        backend.close()

    def test_attach_without_sidecar_rejected(self, tmp_path):
        backend = make_backend(tmp_path)
        backend.put(1, entry(1))
        backend.seal()
        backend.close()
        backend.meta_path.unlink()
        with pytest.raises(CacheError):
            make_backend(tmp_path)

    def test_sidecar_is_codec_generic(self, tmp_path):
        """The window store's codec (extra timing fields) seals and adopts
        through the same stub-graph mechanism as the cache codec."""
        backend = MmapBackend(
            WindowEntryCodec(), path=str(tmp_path / "store"), table="window_entries"
        )
        item = WindowEntry(
            serial=5,
            query=Graph(labels=["C", "N"], edges=[(0, 1)], graph_id=5),
            answer_ids=frozenset({9}),
            filter_time_s=0.25,
            verify_time_s=0.5,
        )
        backend.put(5, item)
        backend.seal()
        backend.close()
        attached = MmapBackend(
            WindowEntryCodec(), path=str(tmp_path / "store"), table="window_entries"
        )
        assert attached.get(5) == item
        attached.close()

    def test_sidecar_stores_extents_not_graph_text(self, tmp_path):
        backend = make_backend(tmp_path)
        backend.put(1, entry(1))
        backend.seal()
        payload = json.loads(backend.meta_path.read_text())
        assert payload["version"] == 1
        (record,) = payload["records"]
        offset, length = record["query"]
        assert offset == 0 and length > 0
        backend.close()


class TestDeadExtentReclamation:
    def test_seal_compacts_dead_extents(self, tmp_path):
        backend = make_backend(tmp_path)
        for serial in range(1, 6):
            backend.put(serial, entry(serial))
        backend.seal()
        sealed_bytes = backend.arena.total_bytes
        # Freeing sealed-region extents leaves dead bytes in the segment
        # until the next seal compacts them away.
        backend.delete(2)
        backend.delete(4)
        backend.put(1, entry(1, answers=(7,)))  # overwrite frees the old extent
        arena = backend.arena
        assert arena.dead_bytes > 0
        backend.seal()
        assert arena.dead_bytes == 0
        assert arena.live_bytes == arena.total_bytes
        assert arena.total_bytes < sealed_bytes
        assert sorted(backend.serials()) == [1, 3, 5]
        assert backend.get(1).answer_ids == frozenset({7})
        backend.close()


class TestTransactionalDelta:
    def test_apply_delta_removals_then_additions(self, tmp_path):
        backend = make_backend(tmp_path)
        for serial in (1, 2, 3):
            backend.put(serial, entry(serial))
        backend.apply_delta(
            add=[(4, entry(4)), (2, entry(2, answers=(8,)))], remove=[1, 99]
        )
        assert sorted(backend.serials()) == [2, 3, 4]
        assert backend.get(2).answer_ids == frozenset({8})
        assert backend.op_counts.rows_deleted == 1  # serial 99 was absent
        backend.close()


class TestSnapshotRecords:
    def test_dump_records_carry_arena_addresses(self, tmp_path):
        backend = make_backend(tmp_path)
        originals = [entry(serial) for serial in (1, 2)]
        for item in originals:
            backend.put(item.serial, item)
        records = backend.dump_records()
        codec = CacheEntryCodec()
        for original, record in zip(originals, records):
            assert record["arena"]["path"] == backend.arena_path
            assert record["arena"]["length"] > 0
            # The portable text stays loadable by the ordinary codec.
            decoded = codec.decode({k: v for k, v in record.items() if k != "arena"})
            assert decoded == original
        backend.close()


class TestDeltaSeal:
    """Incremental re-seal: tails publish as delta segments, extents stay put."""

    def test_first_seal_delta_falls_back_to_full_seal(self, tmp_path):
        backend = make_backend(tmp_path)
        backend.put(1, entry(1))
        backend.put(2, entry(2))
        assert backend.seal_delta() == 2
        assert backend.arena.sealed
        assert backend.arena.delta_count == 0
        backend.close()

    def test_delta_appends_without_moving_sealed_records(self, tmp_path):
        backend = make_backend(tmp_path)
        backend.put(1, entry(1))
        backend.seal()
        sealed_view = backend.get(1)
        backend.put(2, entry(2, answers=(9,)))
        assert backend.seal_delta() == 1
        assert backend.arena.delta_count == 1
        # The base record did not move and still decodes identically.
        assert backend.get(1) == sealed_view
        assert backend.get(2) == entry(2, answers=(9,))
        backend.close()

    def test_attach_adopts_base_plus_deltas(self, tmp_path):
        backend = make_backend(tmp_path)
        backend.put(1, entry(1))
        backend.seal()
        backend.put(2, entry(2))
        backend.seal_delta()
        backend.put(3, entry(3))
        backend.seal_delta()
        assert backend.arena.delta_count == 2
        backend.close()

        attached = make_backend(tmp_path)
        assert sorted(attached.serials()) == [1, 2, 3]
        for serial in (1, 2, 3):
            assert attached.get(serial) == entry(serial)
        assert attached.arena.delta_count == 2
        attached.close()

    def test_full_seal_folds_deltas_back(self, tmp_path):
        backend = make_backend(tmp_path)
        backend.put(1, entry(1))
        backend.seal()
        backend.put(2, entry(2))
        backend.seal_delta()
        delta_file = tmp_path / "store.entries.arena.delta1"
        assert delta_file.exists()
        backend.seal()
        assert backend.arena.delta_count == 0
        assert not delta_file.exists()
        assert backend.get(2) == entry(2)
        backend.close()

    def test_empty_tail_publishes_nothing(self, tmp_path):
        backend = make_backend(tmp_path)
        backend.put(1, entry(1))
        backend.seal()
        assert backend.seal_delta() == 0
        assert backend.arena.delta_count == 0
        backend.close()


class TestArenaStatistics:
    def test_statistics_track_segments_and_occupancy(self, tmp_path):
        backend = make_backend(tmp_path)
        backend.put(1, entry(1))
        backend.seal()
        backend.put(2, entry(2))
        backend.seal_delta()
        stats = backend.arena_statistics()
        assert stats["table"] == "entries"
        assert stats["live_bytes"] > 0
        assert stats["delta_segments"] == 1
        kinds = [segment["kind"] for segment in stats["segments"]]
        assert kinds == ["base", "delta"]
        backend.close()

    def test_dead_bytes_after_delete(self, tmp_path):
        backend = make_backend(tmp_path)
        backend.put(1, entry(1))
        backend.put(2, entry(2))
        backend.seal()
        backend.delete(1)
        stats = backend.arena_statistics()
        assert stats["dead_bytes"] > 0
        backend.close()
