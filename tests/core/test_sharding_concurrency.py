"""Cross-shard concurrency: full GC pipelines really do overlap.

PR 2's service could only overlap Method-M filtering — every GC stage still
serialized on the single cache-level lock.  The sharded cache removes that
ceiling, and this module pins it:

1. **Pipeline overlap** — with ``shards=4`` and ``jobs=4``, the *commit*
   stage (the most exclusive stage: it runs under its shard's GC lock and
   mutates window/stores/index) is observed running on two or more shards at
   the same instant, via a concurrency counter wrapped around each shard's
   ``CommitStage``.
2. **Determinism under concurrency** — ``query_many(jobs=4)`` produces
   byte-identical per-query results and per-shard work counters to a serial
   loop over the same sharded cache (routing is work-counter-neutral).
3. **Race smoke** — 8 free-running threads hammering one shards=4 cache
   never corrupt it: every answer still equals Method M's, capacity bounds
   hold shard-wise, and no query is lost.

Auto-marked ``concurrency`` (tests/conftest.py) so the dedicated CI job runs
these with a pinned ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import functools
import threading
import time

from repro.core import GraphCacheConfig, GraphCacheService, ShardedGraphCache
from repro.graphs.generators import aids_like
from repro.methods import SIMethod, execute_query
from repro.workloads import generate_type_a


@functools.lru_cache(maxsize=2)
def _dataset(seed: int = 2):
    return aids_like(scale=0.05, seed=seed)


def _workload(count, seed=17):
    return list(
        generate_type_a(_dataset(), "ZZ", count, query_sizes=(3, 5, 8), seed=seed)
    )


def _shard_counters(sharded: ShardedGraphCache):
    return [
        (
            runtime.queries_processed,
            runtime.subiso_tests,
            runtime.subiso_tests_alleviated,
            runtime.containment_tests,
            runtime.containment_memo_hits,
            runtime.cache_hits,
            runtime.exact_hits,
            runtime.empty_shortcuts,
        )
        for runtime in sharded.shard_statistics()
    ]


class _OverlapProbe:
    """Counts how many instrumented sections run concurrently (peak)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._active = 0
        self.max_active = 0

    def __enter__(self) -> "_OverlapProbe":
        with self._lock:
            self._active += 1
            self.max_active = max(self.max_active, self._active)
        return self

    def __exit__(self, *exc_info) -> None:
        with self._lock:
            self._active -= 1


def _instrument_commits(sharded: ShardedGraphCache, probe: _OverlapProbe, dwell_s: float):
    """Wrap every shard's CommitStage with the overlap probe.

    The wrapper dwells inside the instrumented section so that genuinely
    concurrent commits are observed as such; a single-lock cache could never
    drive ``probe.max_active`` past 1 regardless of dwell time, because its
    commits serialize on the one GC lock.
    """
    for shard in sharded.shards:
        commit_stage = shard.pipeline.stages[-1]
        original = commit_stage.run

        def run(ctx, _original=original):
            with probe:
                time.sleep(dwell_s)
                _original(ctx)

        commit_stage.run = run  # instance attribute shadows the class method


class TestFullPipelineOverlap:
    def test_commits_overlap_across_shards(self) -> None:
        method = SIMethod(_dataset(), matcher="vf2plus")
        sharded = ShardedGraphCache(
            method, GraphCacheConfig(cache_capacity=6, window_size=3, shards=4)
        )
        workload = _workload(40)
        assert len({sharded.shard_of(q) for q in workload}) >= 2

        probe = _OverlapProbe()
        _instrument_commits(sharded, probe, dwell_s=0.01)
        results = GraphCacheService(sharded).query_many(workload, jobs=4)

        assert len(results) == len(workload)
        assert sharded.runtime_statistics.queries_processed == len(workload)
        # The concurrency counter: >= 2 commits in flight at one instant
        # means two full pipelines progressed through their GC-locked stage
        # simultaneously — impossible on the single-lock (unsharded) cache.
        assert probe.max_active >= 2

    def test_single_cache_commits_cannot_overlap(self) -> None:
        """Control experiment: shards=1 keeps commits strictly serial."""
        method = SIMethod(_dataset(), matcher="vf2plus")
        sharded = ShardedGraphCache(
            method, GraphCacheConfig(cache_capacity=6, window_size=3, shards=1)
        )
        probe = _OverlapProbe()
        _instrument_commits(sharded, probe, dwell_s=0.002)

        workload = _workload(24)
        threads = [
            threading.Thread(
                target=lambda chunk=workload[i::4]: [sharded.query(q) for q in chunk]
            )
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert probe.max_active == 1


class TestShardedDeterminism:
    def test_query_many_matches_serial_loop(self) -> None:
        """Concurrent shard workers are work-counter-neutral routing."""
        workload = _workload(36)
        config = GraphCacheConfig(cache_capacity=6, window_size=3, shards=4)

        serial = ShardedGraphCache(SIMethod(_dataset(), matcher="vf2plus"), config)
        serial_results = [serial.query(q) for q in workload]

        concurrent = ShardedGraphCache(SIMethod(_dataset(), matcher="vf2plus"), config)
        concurrent_results = GraphCacheService(concurrent).query_many(workload, jobs=4)

        for mine, theirs in zip(concurrent_results, serial_results, strict=True):
            assert mine.answer_ids == theirs.answer_ids
            assert mine.serial == theirs.serial
            assert mine.method_candidates == theirs.method_candidates
            assert mine.final_candidates == theirs.final_candidates
            assert mine.subiso_tests == theirs.subiso_tests
            assert mine.containment_tests == theirs.containment_tests
            assert mine.shortcut == theirs.shortcut
        assert _shard_counters(concurrent) == _shard_counters(serial)


class TestShardedRaceSmoke:
    THREADS = 8

    def test_threads_hammer_one_sharded_cache(self) -> None:
        """shards=4, 8 threads: correctness survives any interleaving."""
        method = SIMethod(_dataset(), matcher="vf2plus")
        workload = _workload(48)
        expected = {}
        for query in workload:
            if query not in expected:
                expected[query] = execute_query(method, query).answer_ids

        sharded = ShardedGraphCache(
            method, GraphCacheConfig(cache_capacity=6, window_size=3, shards=4)
        )
        chunks = [workload[i :: self.THREADS] for i in range(self.THREADS)]
        barrier = threading.Barrier(self.THREADS)
        failures: list = []

        def worker(chunk) -> None:
            try:
                barrier.wait(timeout=30)
                for query in chunk:
                    result = sharded.query(query)
                    if result.answer_ids != expected[query]:
                        failures.append(
                            ("wrong answers", result.serial, result.answer_ids)
                        )
            except Exception as exc:  # noqa: BLE001 - surfaced via `failures`
                failures.append(exc)

        threads = [
            threading.Thread(target=worker, args=(chunk,), name=f"shard-hammer-{i}")
            for i, chunk in enumerate(chunks)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(thread.is_alive() for thread in threads)
        assert failures == []
        assert sharded.runtime_statistics.queries_processed == len(workload)
        assert all(len(shard) <= 6 for shard in sharded.shards)
