"""Tests for the adaptive (hill-climbing) admission controller."""

from __future__ import annotations

import pytest

from repro.core.policies import AdaptiveAdmissionController
from repro.core.stores import WindowEntry
from repro.graphs.graph import Graph


def entry(serial, verify, filter_=1.0):
    return WindowEntry(
        serial=serial,
        query=Graph(labels=["C"], edges=[]),
        answer_ids=frozenset(),
        filter_time_s=filter_,
        verify_time_s=verify,
    )


def calibrated_controller(**kwargs):
    controller = AdaptiveAdmissionController(calibration_windows=1, **kwargs)
    controller.observe_window([entry(i, verify=float(i)) for i in range(1, 9)])
    return controller


class TestConstruction:
    def test_invalid_step_factor(self):
        with pytest.raises(ValueError):
            AdaptiveAdmissionController(step_factor=1.0)

    def test_inherits_base_admission_behaviour(self):
        controller = AdaptiveAdmissionController(enabled=True, threshold=2.0)
        assert controller.admit(entry(1, verify=5.0))
        assert not controller.admit(entry(2, verify=1.0))


class TestAdaptation:
    def test_history_seeded_after_calibration(self):
        controller = calibrated_controller()
        assert controller.calibrated
        assert controller.threshold_history
        assert controller.threshold_history[-1] == controller.threshold

    def test_improving_savings_keep_direction(self):
        controller = calibrated_controller()
        start = controller.threshold
        controller.record_window_saving(1.0)
        controller.record_window_saving(2.0)
        controller.record_window_saving(3.0)
        assert controller.threshold > start  # kept raising the threshold

    def test_worsening_savings_reverse_direction(self):
        controller = calibrated_controller()
        controller.record_window_saving(5.0)
        raised = controller.threshold
        controller.record_window_saving(1.0)  # got worse → back off
        assert controller.threshold < raised

    def test_threshold_never_below_minimum(self):
        controller = calibrated_controller(min_threshold=0.5)
        for saving in (5.0, 1.0, 0.5, 0.2, 0.1, 0.05):
            controller.record_window_saving(saving)
        assert controller.threshold >= 0.5

    def test_no_adaptation_before_calibration(self):
        controller = AdaptiveAdmissionController(calibration_windows=3)
        controller.record_window_saving(1.0)
        assert controller.threshold is None

    def test_no_adaptation_when_disabled(self):
        controller = AdaptiveAdmissionController(enabled=False)
        controller.record_window_saving(1.0)
        assert controller.threshold is None
        assert controller.admit(entry(1, verify=0.001))
