"""Tests for the Cache and Window data stores."""

from __future__ import annotations

import pytest

from repro.core.stores import CacheEntry, CacheStore, WindowEntry, WindowStore
from repro.exceptions import CacheError
from repro.graphs.graph import Graph


def entry(serial, answers=(0,)):
    return CacheEntry(
        serial=serial,
        query=Graph(labels=["C", "O"], edges=[(0, 1)], graph_id=serial),
        answer_ids=frozenset(answers),
    )


def window_entry(serial, filter_time=0.1, verify_time=1.0):
    return WindowEntry(
        serial=serial,
        query=Graph(labels=["C", "O"], edges=[(0, 1)]),
        answer_ids=frozenset({0}),
        filter_time_s=filter_time,
        verify_time_s=verify_time,
    )


class TestCacheStore:
    def test_capacity_validation(self):
        with pytest.raises(CacheError):
            CacheStore(0)

    def test_add_and_get(self):
        store = CacheStore(2)
        store.add(entry(1))
        assert store.get(1).serial == 1
        assert 1 in store
        assert len(store) == 1

    def test_add_duplicate_rejected(self):
        store = CacheStore(2)
        store.add(entry(1))
        with pytest.raises(CacheError):
            store.add(entry(1))

    def test_add_when_full_rejected(self):
        store = CacheStore(1)
        store.add(entry(1))
        assert store.is_full
        with pytest.raises(CacheError):
            store.add(entry(2))

    def test_free_slots(self):
        store = CacheStore(3)
        store.add(entry(1))
        assert store.free_slots() == 2

    def test_evict(self):
        store = CacheStore(2)
        store.add(entry(1))
        evicted = store.evict(1)
        assert evicted.serial == 1
        assert len(store) == 0

    def test_evict_missing_raises(self):
        with pytest.raises(CacheError):
            CacheStore(1).evict(9)

    def test_get_missing_raises(self):
        with pytest.raises(CacheError):
            CacheStore(1).get(9)

    def test_replace_contents(self):
        store = CacheStore(3)
        store.add(entry(1))
        store.replace_contents([entry(2), entry(3)])
        assert sorted(store.serials()) == [2, 3]

    def test_replace_contents_over_capacity_rejected(self):
        store = CacheStore(1)
        with pytest.raises(CacheError):
            store.replace_contents([entry(1), entry(2)])

    def test_replace_contents_duplicate_serials_rejected(self):
        store = CacheStore(3)
        with pytest.raises(CacheError):
            store.replace_contents([entry(1), entry(1)])

    def test_iteration_snapshot(self):
        store = CacheStore(3)
        store.add(entry(1))
        store.add(entry(2))
        assert {e.serial for e in store} == {1, 2}

    def test_persistence_round_trip(self, tmp_path):
        store = CacheStore(4)
        store.add(entry(1, answers=(0, 2)))
        store.add(entry(5, answers=()))
        path = tmp_path / "cache.json"
        store.save(path)
        loaded = CacheStore.load(path)
        assert loaded.capacity == 4
        assert sorted(loaded.serials()) == [1, 5]
        assert loaded.get(1).answer_ids == frozenset({0, 2})
        assert loaded.get(5).answer_ids == frozenset()
        assert loaded.get(1).query == store.get(1).query


class TestWindowStore:
    def test_capacity_validation(self):
        with pytest.raises(CacheError):
            WindowStore(0)

    def test_add_until_full(self):
        store = WindowStore(2)
        store.add(window_entry(1))
        assert not store.is_full
        store.add(window_entry(2))
        assert store.is_full
        with pytest.raises(CacheError):
            store.add(window_entry(3))

    def test_duplicate_serial_rejected(self):
        store = WindowStore(3)
        store.add(window_entry(1))
        with pytest.raises(CacheError):
            store.add(window_entry(1))

    def test_drain_returns_ordered_and_clears(self):
        store = WindowStore(3)
        store.add(window_entry(5))
        store.add(window_entry(2))
        drained = store.drain()
        assert [e.serial for e in drained] == [2, 5]
        assert len(store) == 0

    def test_entries_without_draining(self):
        store = WindowStore(3)
        store.add(window_entry(9))
        assert [e.serial for e in store.entries()] == [9]
        assert len(store) == 1

    def test_contains_and_iter(self):
        store = WindowStore(2)
        store.add(window_entry(1))
        assert 1 in store
        assert [e.serial for e in store] == [1]

    def test_expensiveness(self):
        assert window_entry(1, filter_time=0.5, verify_time=2.0).expensiveness == 4.0
        assert window_entry(1, filter_time=0.0, verify_time=1.0).expensiveness == float("inf")
        assert window_entry(1, filter_time=0.0, verify_time=0.0).expensiveness == 0.0
