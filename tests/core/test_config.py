"""Tests for GraphCacheConfig validation and helpers."""

from __future__ import annotations

import pytest

from repro.core.config import GraphCacheConfig
from repro.exceptions import CacheError


class TestDefaults:
    def test_paper_defaults(self):
        config = GraphCacheConfig()
        assert config.cache_capacity == 100
        assert config.window_size == 20
        assert config.replacement_policy == "hd"
        assert config.admission_control is False
        assert config.query_mode == "subgraph"

    def test_label(self):
        assert GraphCacheConfig().label() == "c100-b20"
        assert GraphCacheConfig(cache_capacity=500, window_size=20).label() == "c500-b20"


class TestValidation:
    @pytest.mark.parametrize("field, value", [
        ("cache_capacity", 0),
        ("cache_capacity", -5),
        ("window_size", 0),
        ("admission_expensive_fraction", 0.0),
        ("admission_expensive_fraction", 1.5),
        ("admission_calibration_windows", 0),
        ("index_path_length", 0),
        ("warmup_windows", -1),
    ])
    def test_invalid_numeric_fields(self, field, value):
        with pytest.raises(CacheError):
            GraphCacheConfig(**{field: value})

    def test_invalid_policy(self):
        with pytest.raises(CacheError):
            GraphCacheConfig(replacement_policy="mru")

    def test_invalid_query_mode(self):
        with pytest.raises(CacheError):
            GraphCacheConfig(query_mode="bidirectional")

    def test_policy_name_case_insensitive(self):
        assert GraphCacheConfig(replacement_policy="PINC").replacement_policy == "PINC"


class TestHelpers:
    def test_with_policy(self):
        config = GraphCacheConfig().with_policy("lru")
        assert config.replacement_policy == "lru"
        assert config.cache_capacity == 100

    def test_with_capacity(self):
        config = GraphCacheConfig().with_capacity(300)
        assert config.cache_capacity == 300
        assert config.window_size == 20

    def test_with_capacity_and_window(self):
        config = GraphCacheConfig().with_capacity(500, window_size=50)
        assert (config.cache_capacity, config.window_size) == (500, 50)

    def test_with_admission_control(self):
        config = GraphCacheConfig().with_admission_control(True, expensive_fraction=0.4)
        assert config.admission_control
        assert config.admission_expensive_fraction == 0.4

    def test_with_admission_control_threshold(self):
        config = GraphCacheConfig().with_admission_control(True, threshold=5.0)
        assert config.admission_threshold == 5.0

    def test_original_config_unchanged(self):
        base = GraphCacheConfig()
        base.with_policy("pin")
        assert base.replacement_policy == "hd"
