"""Tests for the containment-memo layer of the GC processors.

Skewed workloads repeat query structures heavily; the memo turns the second
and later confirmations of the same ``(pattern, target)`` structure pair into
dictionary lookups.  Correctness requirement: a memoised processor run must
return exactly the outcomes of an unmemoised run (modulo timing and the
test/memo counters).
"""

from __future__ import annotations

import random

import pytest

from repro.core.cache import GraphCache
from repro.core.config import GraphCacheConfig
from repro.core.processors import CacheProcessors
from repro.core.query_index import QueryGraphIndex
from repro.graphs.generators import aids_like, random_connected_graph
from repro.graphs.graph import Graph
from repro.methods.si import SIMethod


def build_index(entries):
    index = QueryGraphIndex(max_path_length=3)
    for serial, graph in entries:
        index.add(serial, graph)
    return index


def _query_pool(seed: int = 23, count: int = 12):
    rng = random.Random(seed)
    pool = []
    for _ in range(count):
        order = rng.randint(3, 8)
        pool.append(random_connected_graph(order, 2.2, ["C", "N", "O"], rng))
    return pool


CC_EDGE = Graph(labels=["C", "C"], edges=[(0, 1)])
CCO_PATH = Graph(labels=["C", "C", "O"], edges=[(0, 1), (1, 2)])
CCON_PATH = Graph(labels=["C", "C", "O", "N"], edges=[(0, 1), (1, 2), (2, 3)])


class TestContainmentMemo:
    def test_repeated_query_runs_zero_new_tests(self):
        processors = CacheProcessors(build_index([(1, CCON_PATH), (2, CC_EDGE)]))
        first = processors.process(CCO_PATH)
        assert first.containment_tests >= 1
        assert first.memo_hits == 0
        # Same structure again (a fresh object): every verdict is memoised.
        repeat = processors.process(Graph(labels=["C", "C", "O"], edges=[(0, 1), (1, 2)]))
        assert repeat.containment_tests == 0
        assert repeat.memo_hits == first.containment_tests
        assert repeat.result_sub == first.result_sub
        assert repeat.result_super == first.result_super
        assert repeat.exact_match_serial == first.exact_match_serial

    def test_memoised_equals_unmemoised(self):
        pool = _query_pool()
        entries = [(serial, graph) for serial, graph in enumerate(pool[:6])]
        memoised = CacheProcessors(build_index(entries))
        plain = CacheProcessors(build_index(entries), memoize=False)
        rng = random.Random(7)
        # A Zipf-ish stream: heavy repetition of a few pool structures.
        stream = [pool[min(rng.randint(0, 11), rng.randint(0, 11))] for _ in range(60)]
        for query in stream:
            a = memoised.process(query)
            b = plain.process(query)
            assert a.result_sub == b.result_sub
            assert a.result_super == b.result_super
            assert a.exact_match_serial == b.exact_match_serial
        assert memoised.memo_hits > 0
        assert plain.memo_hits == 0

    def test_memo_limit_clears(self):
        processors = CacheProcessors(build_index([(1, CCON_PATH)]))
        processors.MEMO_LIMIT = 1
        processors.process(CCO_PATH)
        processors.process(CC_EDGE)
        assert processors.memo_size <= 1

    def test_unmemoised_counts_every_test(self):
        processors = CacheProcessors(build_index([(1, CCON_PATH)]), memoize=False)
        first = processors.process(CCO_PATH)
        second = processors.process(CCO_PATH)
        assert first.containment_tests == second.containment_tests >= 1
        assert second.memo_hits == 0


class TestGraphCacheMemoIntegration:
    @pytest.fixture(scope="class")
    def cache_run(self):
        dataset = aids_like(scale=0.06, seed=5)
        method = SIMethod(dataset, matcher="vf2plus")
        cache = GraphCache(
            method, config=GraphCacheConfig(cache_capacity=8, window_size=4)
        )
        rng = random.Random(3)
        pool = []
        for _ in range(6):
            base = dataset[rng.randrange(len(dataset))]
            k = rng.randint(3, min(6, base.order))
            pool.append(base.induced_subgraph(rng.sample(range(base.order), k=k)))
        results = []
        # Three identical passes over the pool.  Pass one populates the cache;
        # pass two still runs real tests against cached structures that did
        # not exist during pass one; by pass three every structure pair the
        # index can propose has been confirmed once, so the memo answers all.
        for query in pool * 3:
            results.append(cache.query(query))
        return cache, pool, results

    def test_repeated_identical_queries_hit_memo(self, cache_run):
        cache, pool, results = cache_run
        third_pass = results[2 * len(pool):]
        assert sum(r.containment_tests for r in third_pass) == 0
        assert sum(r.containment_memo_hits for r in third_pass) > 0
        assert cache.runtime_statistics.containment_memo_hits > 0

    def test_answers_identical_across_passes(self, cache_run):
        cache, pool, results = cache_run
        first_pass = results[: len(pool)]
        third_pass = results[2 * len(pool):]
        for a, b in zip(first_pass, third_pass, strict=True):
            assert a.answer_ids == b.answer_ids

    def test_memo_counters_flow_to_runtime_statistics(self, cache_run):
        cache, _, results = cache_run
        runtime = cache.runtime_statistics
        assert runtime.containment_tests == sum(r.containment_tests for r in results)
        assert runtime.containment_memo_hits == sum(
            r.containment_memo_hits for r in results
        )
        assert "containment_memo_hits" in runtime.as_dict()
