"""Tests for the GCsub / GCsuper processors."""

from __future__ import annotations


from repro.core.processors import CacheProcessors
from repro.core.query_index import QueryGraphIndex
from repro.graphs.graph import Graph


def build_index(entries):
    index = QueryGraphIndex(max_path_length=3)
    for serial, graph in entries:
        index.add(serial, graph)
    return index


CC_EDGE = Graph(labels=["C", "C"], edges=[(0, 1)])
CCO_PATH = Graph(labels=["C", "C", "O"], edges=[(0, 1), (1, 2)])
CCON_PATH = Graph(labels=["C", "C", "O", "N"], edges=[(0, 1), (1, 2), (2, 3)])
CCO_TRIANGLE = Graph(labels=["C", "C", "O"], edges=[(0, 1), (1, 2), (0, 2)])


class TestProcessorOutcome:
    def test_new_query_is_subgraph_of_cached(self):
        processors = CacheProcessors(build_index([(1, CCON_PATH)]))
        outcome = processors.process(CCO_PATH)
        assert outcome.result_sub == frozenset({1})
        assert outcome.result_super == frozenset()
        assert outcome.exact_match_serial is None
        assert outcome.hit

    def test_new_query_is_supergraph_of_cached(self):
        processors = CacheProcessors(build_index([(1, CC_EDGE)]))
        outcome = processors.process(CCO_PATH)
        assert outcome.result_super == frozenset({1})
        assert outcome.result_sub == frozenset()

    def test_exact_match_detected(self):
        processors = CacheProcessors(build_index([(1, CCO_PATH)]))
        outcome = processors.process(Graph(labels=["O", "C", "C"], edges=[(0, 1), (1, 2)]))
        assert outcome.exact_match_serial == 1
        assert 1 in outcome.result_sub and 1 in outcome.result_super

    def test_same_shape_but_not_isomorphic(self):
        # Path C-C-O vs triangle C-C-O: same labels, but 2 vs 3 edges.
        processors = CacheProcessors(build_index([(1, CCO_TRIANGLE)]))
        outcome = processors.process(CCO_PATH)
        assert outcome.exact_match_serial is None
        assert outcome.result_sub == frozenset({1})  # path ⊆ triangle

    def test_unrelated_query_no_hits(self):
        processors = CacheProcessors(build_index([(1, CCO_PATH)]))
        outcome = processors.process(Graph(labels=["S", "S"], edges=[(0, 1)]))
        assert not outcome.hit
        assert outcome.exact_match_serial is None

    def test_multiple_relations(self):
        index = build_index([(1, CC_EDGE), (2, CCON_PATH), (3, CCO_TRIANGLE)])
        processors = CacheProcessors(index)
        outcome = processors.process(CCO_PATH)
        assert 1 in outcome.result_super       # C-C ⊆ query
        assert 2 in outcome.result_sub          # query ⊆ C-C-O-N
        assert 3 in outcome.result_sub          # query ⊆ triangle

    def test_empty_index(self):
        processors = CacheProcessors(build_index([]))
        outcome = processors.process(CCO_PATH)
        assert not outcome.hit
        assert outcome.containment_tests == 0

    def test_timing_and_test_counts_recorded(self):
        processors = CacheProcessors(build_index([(1, CCON_PATH), (2, CC_EDGE)]))
        outcome = processors.process(CCO_PATH)
        assert outcome.elapsed_s >= 0.0
        assert outcome.containment_tests >= 1

    def test_exact_match_fast_path_limits_tests(self):
        # When an identical query is cached, the processors stop at the first
        # confirmation instead of testing every candidate.
        index = build_index([(1, CCO_PATH), (2, CCON_PATH), (3, CC_EDGE)])
        processors = CacheProcessors(index)
        outcome = processors.process(CCO_PATH)
        assert outcome.exact_match_serial == 1
        assert outcome.containment_tests <= 2

    def test_index_and_matcher_exposed(self):
        index = build_index([(1, CC_EDGE)])
        processors = CacheProcessors(index)
        assert processors.index is index
        assert processors.matcher.name == "vf2plus"
