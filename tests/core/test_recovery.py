"""Replay-based crash recovery: snapshot + journal ≡ uninterrupted run.

The oracle is a reference run that records, at every round boundary, the
digest the cache held the instant the round landed.  Crashes are simulated
by truncating copies of the journal to k complete frames (the writer died
at a plan boundary) or k frames plus half a line (the writer died mid
append); :func:`recover_cache` must reproduce the reference digest for the
corresponding boundary from the checkpoint alone.

Single-shard boundaries are global boundaries, so recovery there pins the
*full* digest (entries, stats, window, serial counter).  A sharded crash
leaves the other shards mid-window — their unjournaled window entries die
with the process — so sharded recovery pins the replicated digest
(entries + statistics) per shard at that shard's own boundary.  The
GCindex version is a publication counter (one rebuild on restore replaces
many round publishes) and is excluded from recovery digests throughout.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import (
    GraphCacheConfig,
    build_cache,
    load_cache,
    recover_cache,
    save_cache,
)
from repro.core.policies import PlanJournal
from repro.core.replication import cache_state_digest
from repro.core.sharding import ShardedGraphCache
from repro.exceptions import CacheError
from repro.graphs.generators import aids_like
from repro.methods import SIMethod
from repro.workloads import generate_type_a

DATASET = aids_like(scale=0.05, seed=3)
METHOD = SIMethod(DATASET, matcher="vf2plus")
CHECKPOINT_AFTER = 14  # mid-window for window_size=3: pending hits exist


def _workload(count: int = 30, seed: int = 7):
    return list(
        generate_type_a(DATASET, "ZZ", count, query_sizes=(3, 5, 8), seed=seed)
    )


def _shards_of(cache):
    return cache.shards if isinstance(cache, ShardedGraphCache) else (cache,)


def _journal_paths(base: Path, shard_count: int):
    if shard_count == 1:
        return [base]
    return [
        Path(ShardedGraphCache._shard_path(str(base), index))
        for index in range(shard_count)
    ]


@pytest.fixture(
    scope="module",
    params=[
        ("memory", 1),
        ("memory", 3),
        ("sqlite", 1),
        ("sqlite", 3),
    ],
    ids=["memory-1shard", "memory-3shards", "sqlite-1shard", "sqlite-3shards"],
)
def reference_run(request, tmp_path_factory):
    """One uninterrupted run per (backend, shards): journals + boundary digests."""
    backend, shard_count = request.param
    tmp = tmp_path_factory.mktemp(f"ref-{backend}-{shard_count}")
    config = GraphCacheConfig(
        cache_capacity=6,
        window_size=3,
        maintenance_mode="sync",
        backend=backend,
        backend_path=str(tmp / "store.db") if backend == "sqlite" else None,
        shards=shard_count,
        journal_path=str(tmp / "journal.jsonl"),
        journal_fsync=True,
    )
    cache = build_cache(METHOD, config)
    shards = _shards_of(cache)
    # boundaries[s][k]: shard s's digests the instant its round k landed.
    boundaries = [
        {
            0: (
                cache_state_digest(cache, include_index_version=False)[s],
                cache_state_digest(
                    cache, include_index_version=False, replicated_only=True
                )[s],
            )
        }
        for s in range(shard_count)
    ]
    crash_points = []
    checkpoint = tmp / "checkpoint.json"
    checkpoint_counts = None
    counts = tuple(0 for _ in shards)
    for i, query in enumerate(_workload()):
        cache.query(query)
        previous, counts = counts, tuple(
            shard.plan_journal.last_round for shard in shards
        )
        if counts != previous:
            full = cache_state_digest(cache, include_index_version=False)
            repl = cache_state_digest(
                cache, include_index_version=False, replicated_only=True
            )
            for s in range(shard_count):
                if counts[s] != previous[s]:
                    boundaries[s][counts[s]] = (full[s], repl[s])
            crash_points.append(counts)
        if i + 1 == CHECKPOINT_AFTER:
            save_cache(cache, checkpoint)
            checkpoint_counts = counts
            checkpoint_digests = (
                cache_state_digest(cache, include_index_version=False),
                cache_state_digest(
                    cache, include_index_version=False, replicated_only=True
                ),
            )
    cache.close()
    journal_lines = [
        path.read_text(encoding="utf-8").splitlines(keepends=True)
        for path in _journal_paths(Path(config.journal_path), shard_count)
    ]
    return {
        "backend": backend,
        "shard_count": shard_count,
        "checkpoint": checkpoint,
        "checkpoint_counts": checkpoint_counts,
        "checkpoint_digests": checkpoint_digests,
        "crash_points": crash_points,
        "boundaries": boundaries,
        "journal_lines": journal_lines,
    }


def _write_crash_journals(run, target_dir: Path, counts, torn: bool) -> Path:
    """Materialize the journal state a crash at ``counts`` leaves behind."""
    base = target_dir / "journal.jsonl"
    paths = _journal_paths(base, run["shard_count"])
    for s, path in enumerate(paths):
        lines = run["journal_lines"][s]
        text = "".join(lines[: counts[s]])
        if torn and counts[s] < len(lines):
            # The writer died mid-append: half the next frame, no newline.
            nxt = lines[counts[s]].rstrip("\n")
            text += nxt[: len(nxt) // 2]
        path.write_text(text, encoding="utf-8")
    return base


def _recovered_digest(run, journal_base: Path):
    cache = recover_cache(run["checkpoint"], METHOD, journal=journal_base)
    try:
        return (
            cache_state_digest(cache, include_index_version=False),
            cache_state_digest(
                cache, include_index_version=False, replicated_only=True
            ),
            cache.runtime_statistics,
        )
    finally:
        cache.close()


def _reachable_crash_points(run):
    """Crash points at/after the checkpoint (a durable checkpoint's rounds
    are necessarily journaled, so earlier truncations cannot occur)."""
    floor = run["checkpoint_counts"]
    return [
        counts
        for counts in run["crash_points"]
        if all(k >= f for k, f in zip(counts, floor))
    ]


class TestCrashPointRecovery:
    @pytest.mark.parametrize("torn", [False, True], ids=["boundary", "mid-line"])
    def test_every_crash_point_recovers_the_boundary_state(
        self, reference_run, tmp_path, torn
    ):
        run = reference_run
        points = _reachable_crash_points(run)
        assert points, "reference run produced no testable crash points"
        for n, counts in enumerate(points):
            crash_dir = tmp_path / f"crash-{n}"
            crash_dir.mkdir()
            base = _write_crash_journals(run, crash_dir, counts, torn=torn)
            full, repl, runtime = _recovered_digest(run, base)
            for s in range(run["shard_count"]):
                if counts[s] == run["checkpoint_counts"][s]:
                    # Nothing to replay for this shard: the checkpoint (which
                    # postdates the boundary) IS the recovered state.
                    expected_full = run["checkpoint_digests"][0][s]
                    expected_repl = run["checkpoint_digests"][1][s]
                else:
                    expected_full, expected_repl = run["boundaries"][s][counts[s]]
                if run["shard_count"] == 1:
                    assert full[s] == expected_full, f"crash at rounds {counts}"
                else:
                    assert repl[s] == expected_repl, f"crash at rounds {counts}"
            replayed = sum(counts) - sum(run["checkpoint_counts"])
            assert runtime.replay_rounds == replayed
            if replayed:
                assert runtime.replay_bytes > 0

    def test_missing_journal_recovers_the_checkpoint_alone(
        self, reference_run, tmp_path
    ):
        run = reference_run
        full, _, runtime = _recovered_digest(run, tmp_path / "nowhere.jsonl")
        assert runtime.replay_rounds == 0
        recovered = recover_cache(run["checkpoint"], METHOD, journal=None)
        recovered.close()


class TestCompaction:
    def test_compaction_does_not_change_recovered_state(
        self, reference_run, tmp_path
    ):
        run = reference_run
        final = run["crash_points"][-1]
        plain = tmp_path / "plain"
        plain.mkdir()
        expected = _recovered_digest(
            run, _write_crash_journals(run, plain, final, torn=False)
        )
        compacted = tmp_path / "compacted"
        compacted.mkdir()
        base = _write_crash_journals(run, compacted, final, torn=False)
        payload = json.loads(run["checkpoint"].read_text(encoding="utf-8"))
        dropped = 0
        for s, path in enumerate(_journal_paths(base, run["shard_count"])):
            watermark = payload["shards"][s]["journal_round"]
            dropped += PlanJournal(path).truncate_before(watermark)
        assert dropped == sum(run["checkpoint_counts"])
        got = _recovered_digest(run, base)
        assert got[0] == expected[0]
        assert got[1] == expected[1]

    def test_truncate_before_drops_only_older_rounds(self, tmp_path):
        source = tmp_path / "journal.jsonl"
        records = [
            json.dumps({"round": k, "payload": k}) + "\n" for k in range(1, 6)
        ]
        source.write_text("".join(records), encoding="utf-8")
        journal = PlanJournal(source)
        assert journal.last_round == 5
        assert journal.truncate_before(3) == 3
        remaining = PlanJournal.read_records(source)
        assert [record["round"] for record in remaining] == [4, 5]
        assert journal.truncate_before(0) == 0


class TestJournalReading:
    def _journal_file(self, tmp_path) -> Path:
        path = tmp_path / "journal.jsonl"
        path.write_text(
            "".join(
                json.dumps({"round": k, "payload": k}) + "\n"
                for k in range(1, 8)
            ),
            encoding="utf-8",
        )
        return path

    def test_since_round_is_inclusive(self, tmp_path):
        path = self._journal_file(tmp_path)
        records = PlanJournal.read_records(path, since_round=5)
        assert [record["round"] for record in records] == [5, 6, 7]

    def test_tail_keeps_the_newest(self, tmp_path):
        path = self._journal_file(tmp_path)
        records = PlanJournal.read_records(path, tail=2)
        assert [record["round"] for record in records] == [6, 7]

    def test_tail_composes_with_since_round(self, tmp_path):
        path = self._journal_file(tmp_path)
        records = PlanJournal.read_records(path, since_round=3, tail=2)
        assert [record["round"] for record in records] == [6, 7]

    def test_torn_tail_is_ignored(self, tmp_path):
        path = self._journal_file(tmp_path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"round": 8, "pay')
        records = PlanJournal.read_records(path)
        assert [record["round"] for record in records] == list(range(1, 8))


class TestGuards:
    def test_recover_rejects_pre_v4_snapshots(self, reference_run, tmp_path):
        run = reference_run
        downgraded = tmp_path / "v3.json"
        downgraded.write_text(
            run["checkpoint"]
            .read_text(encoding="utf-8")
            .replace('"format_version": 4', '"format_version": 3'),
            encoding="utf-8",
        )
        with pytest.raises(CacheError, match="v4"):
            recover_cache(downgraded, METHOD)
        # A plain load still accepts the v3 shape (no watermark needed).
        load_cache(downgraded, METHOD).close()

    def test_recover_rejects_audit_only_journals(self, reference_run, tmp_path):
        run = reference_run
        stripped = []
        for lines in run["journal_lines"]:
            for line in lines:
                record = json.loads(line)
                if record.get("admitted_serials"):
                    record.pop("admitted_entries", None)
                stripped.append(json.dumps(record))
        base = tmp_path / "journal.jsonl"
        paths = _journal_paths(base, run["shard_count"])
        offset = 0
        for s, path in enumerate(paths):
            count = len(run["journal_lines"][s])
            path.write_text(
                "\n".join(stripped[offset : offset + count]) + "\n",
                encoding="utf-8",
            )
            offset += count
        with pytest.raises(CacheError, match="predates replication frames"):
            recover_cache(run["checkpoint"], METHOD, journal=base)


class TestJournalFsyncConfig:
    def test_default_is_off(self):
        assert GraphCacheConfig().journal_fsync is False

    def test_fsync_propagates_to_the_journal(self, tmp_path):
        config = GraphCacheConfig(
            cache_capacity=6,
            window_size=3,
            journal_path=str(tmp_path / "journal.jsonl"),
            journal_fsync=True,
        )
        cache = build_cache(METHOD, config)
        try:
            assert cache.plan_journal.fsync is True
        finally:
            cache.close()

    def test_shards_inherit_fsync(self, tmp_path):
        config = GraphCacheConfig(
            cache_capacity=6,
            window_size=3,
            shards=2,
            journal_path=str(tmp_path / "journal.jsonl"),
            journal_fsync=True,
        )
        cache = build_cache(METHOD, config)
        try:
            assert all(shard.plan_journal.fsync for shard in cache.shards)
        finally:
            cache.close()
