"""Tests for the triplet store, Statistics Manager and per-query stats."""

from __future__ import annotations


from repro.core.statistics import CachedQueryStats, StatisticsManager, TripletStore


class TestTripletStore:
    def test_put_and_get(self):
        store = TripletStore()
        store.put(1, "hits", 3)
        assert store.get(1, "hits") == 3

    def test_get_default(self):
        assert TripletStore().get(1, "missing", default="x") == "x"

    def test_row_access(self):
        store = TripletStore()
        store.put(1, "a", 1)
        store.put(1, "b", 2)
        assert store.row(1) == {"a": 1, "b": 2}
        assert store.row(99) == {}

    def test_column_access(self):
        store = TripletStore()
        store.put(1, "hits", 3)
        store.put(2, "hits", 5)
        store.put(3, "other", 1)
        assert store.column("hits") == {1: 3, 2: 5}

    def test_increment(self):
        store = TripletStore()
        assert store.increment(1, "hits") == 1.0
        assert store.increment(1, "hits", 2.5) == 3.5

    def test_delete_row(self):
        store = TripletStore()
        store.put(1, "a", 1)
        store.delete_row(1)
        assert store.row(1) == {}
        store.delete_row(1)  # lazily tolerated

    def test_keys_contains_len(self):
        store = TripletStore()
        store.put(1, "a", 1)
        store.put(2, "a", 1)
        assert sorted(store.keys()) == [1, 2]
        assert 1 in store and 3 not in store
        assert len(store) == 2


class TestCachedQueryStats:
    def test_first_execution_time(self):
        stats = CachedQueryStats(serial=1, filter_time_s=0.5, verify_time_s=1.5)
        assert stats.first_execution_time_s == 2.0

    def test_expensiveness(self):
        stats = CachedQueryStats(serial=1, filter_time_s=0.5, verify_time_s=2.0)
        assert stats.expensiveness == 4.0

    def test_expensiveness_zero_filter(self):
        assert CachedQueryStats(serial=1, verify_time_s=1.0).expensiveness == float("inf")
        assert CachedQueryStats(serial=1).expensiveness == 0.0


class TestStatisticsManager:
    def test_register_and_snapshot_round_trip(self):
        manager = StatisticsManager()
        manager.register_query(
            CachedQueryStats(
                serial=11, order=5, size=6, distinct_labels=3,
                filter_time_s=0.1, verify_time_s=0.9,
            )
        )
        snapshot = manager.snapshot(11)
        assert snapshot.serial == 11
        assert snapshot.order == 5
        assert snapshot.size == 6
        assert snapshot.distinct_labels == 3
        assert snapshot.hits == 0
        assert snapshot.last_hit_serial is None

    def test_record_hit_updates_counters(self):
        manager = StatisticsManager()
        manager.register_query(CachedQueryStats(serial=11))
        manager.record_hit(11, benefiting_serial=20, cs_reduction=3, cost_reduction=120.0)
        manager.record_hit(11, benefiting_serial=25, cs_reduction=2, cost_reduction=80.0)
        snapshot = manager.snapshot(11)
        assert snapshot.hits == 2
        assert snapshot.last_hit_serial == 25
        assert snapshot.cs_reduction == 5
        assert snapshot.cost_reduction == 200.0
        assert snapshot.special_hits == 0

    def test_special_hit_counted(self):
        manager = StatisticsManager()
        manager.register_query(CachedQueryStats(serial=3))
        manager.record_hit(3, benefiting_serial=9, cs_reduction=1, cost_reduction=1.0, special=True)
        assert manager.snapshot(3).special_hits == 1

    def test_forget_query(self):
        manager = StatisticsManager()
        manager.register_query(CachedQueryStats(serial=7, order=3))
        manager.forget_query(7)
        assert 7 not in manager.known_serials()
        # Snapshot of a forgotten query degrades to zeros rather than raising.
        assert manager.snapshot(7).order == 0

    def test_record_hit_on_unknown_serial_is_dropped(self):
        """A hit landing after forget_query must not resurrect the row.

        Under background maintenance a query can confirm a hit against a
        GCindex snapshot whose entry the worker evicts before the query
        commits; re-creating the statistics row would leak a permanent
        ghost entry nothing ever deletes.
        """
        manager = StatisticsManager()
        manager.register_query(CachedQueryStats(serial=7))
        manager.forget_query(7)
        manager.record_hit(7, benefiting_serial=9, cs_reduction=1, cost_reduction=1.0)
        assert 7 not in manager.known_serials()
        manager.record_hit(99, benefiting_serial=9, cs_reduction=1, cost_reduction=1.0)
        assert 99 not in manager.known_serials()

    def test_snapshots_bulk_order_preserved(self):
        manager = StatisticsManager()
        for serial in (5, 3, 9):
            manager.register_query(CachedQueryStats(serial=serial, order=serial))
        snapshots = manager.snapshots([9, 5])
        assert [s.serial for s in snapshots] == [9, 5]
        assert [s.order for s in snapshots] == [9, 5]

    def test_store_exposed(self):
        manager = StatisticsManager()
        manager.register_query(CachedQueryStats(serial=2, order=4))
        assert manager.store.get(2, "static.order") == 4
