"""Tests for GCindex (the combined sub/supergraph index over cached queries)."""

from __future__ import annotations

import random

import pytest

from repro.core.query_index import QueryGraphIndex
from repro.graphs.generators import random_connected_graph
from repro.graphs.graph import Graph
from repro.isomorphism import VF2PlusMatcher

MATCHER = VF2PlusMatcher()


@pytest.fixture
def index():
    idx = QueryGraphIndex(max_path_length=3)
    idx.add(1, Graph(labels=["C", "C", "O"], edges=[(0, 1), (1, 2)]))          # C-C-O path
    idx.add(2, Graph(labels=["C", "C", "O", "N"], edges=[(0, 1), (1, 2), (2, 3)]))  # C-C-O-N path
    idx.add(3, Graph(labels=["C", "C"], edges=[(0, 1)]))                        # C-C edge
    return idx


class TestMaintenance:
    def test_add_and_contains(self, index):
        assert len(index) == 3
        assert 1 in index and 4 not in index
        assert sorted(index.serials()) == [1, 2, 3]

    def test_graph_accessor(self, index):
        assert index.graph(3).size == 1

    def test_remove(self, index):
        index.remove(2)
        assert len(index) == 2
        assert 2 not in index
        index.remove(2)  # no-op

    def test_rebuild(self, index):
        index.rebuild([(9, Graph(labels=["N", "N"], edges=[(0, 1)]))])
        assert index.serials() == [9]

    def test_size_estimate_positive(self, index):
        assert index.approximate_size_bytes() > 0

    def test_max_path_length(self):
        assert QueryGraphIndex(max_path_length=2).max_path_length == 2


class TestCandidateGeneration:
    def test_candidate_supergraphs_finds_containers(self, index):
        query = Graph(labels=["C", "C"], edges=[(0, 1)])  # contained in all three
        candidates = index.candidate_supergraphs(query)
        assert candidates == frozenset({1, 2, 3})

    def test_candidate_supergraphs_respects_labels(self, index):
        query = Graph(labels=["N", "O"], edges=[(0, 1)])
        assert index.candidate_supergraphs(query) <= frozenset({2})

    def test_candidate_subgraphs_finds_contained(self, index):
        query = Graph(
            labels=["C", "C", "O", "N", "S"],
            edges=[(0, 1), (1, 2), (2, 3), (3, 4)],
        )
        candidates = index.candidate_subgraphs(query)
        # All three cached paths are genuinely contained in the query path, so
        # the (sound) filter must keep every one of them.
        assert frozenset({1, 2, 3}) <= candidates
        for serial in candidates:
            cached = index.graph(serial)
            assert cached.order <= query.order

    def test_empty_index_returns_nothing(self):
        idx = QueryGraphIndex()
        query = Graph(labels=["C"], edges=[])
        assert idx.candidate_supergraphs(query) == frozenset()
        assert idx.candidate_subgraphs(query) == frozenset()

    def test_candidates_never_miss_true_containment(self):
        """Filter soundness: every true sub/super relation survives filtering."""
        rng = random.Random(3)
        idx = QueryGraphIndex(max_path_length=3)
        cached = []
        for serial in range(8):
            graph = random_connected_graph(
                rng.randint(4, 10), 2.4, ["C", "O"], rng
            )
            idx.add(serial, graph)
            cached.append((serial, graph))
        for _trial in range(10):
            query = random_connected_graph(rng.randint(3, 12), 2.4, ["C", "O"], rng)
            supers = idx.candidate_supergraphs(query)
            subs = idx.candidate_subgraphs(query)
            for serial, graph in cached:
                if MATCHER.is_subgraph(query, graph):
                    assert serial in supers
                if MATCHER.is_subgraph(graph, query):
                    assert serial in subs

    def test_query_features_shared_between_directions(self, index):
        query = Graph(labels=["C", "C", "O"], edges=[(0, 1), (1, 2)])
        features = index.query_features(query)
        assert index.candidate_supergraphs(query, features) == index.candidate_supergraphs(query)
        assert index.candidate_subgraphs(query, features) == index.candidate_subgraphs(query)
