"""Tests for the unified maintenance engine (decide/apply, deltas, heap).

Covers the PR-4 acceptance surface:

* the decide/apply split — the paper's Table 1 running example reproduces
  byte-for-byte from the :class:`MaintenancePlan` alone;
* the O(window²) → O(window) rejected-set fix, including the
  duplicate-serial regression;
* the incremental utility heap picking identical victims to the
  full-rescore oracle, for all five policies, under randomized hit streams;
* row-level ``apply_delta`` on both store backends (order, errors,
  counters);
* the admission registry and the engine's persistable state.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.backends import create_backend
from repro.core.policies import (
    AdaptiveAdmissionController,
    AdmissionController,
    MaintenanceEngine,
    MaintenancePlan,
    UtilityHeap,
    admission_by_name,
    admission_from_record,
    available_admission_controllers,
    policy_by_name,
)
from repro.core.query_index import QueryGraphIndex
from repro.core.statistics import CachedQueryStats, StatisticsManager
from repro.core.stores import (
    CacheEntry,
    CacheEntryCodec,
    CacheStore,
    WindowEntry,
)
from repro.exceptions import CacheError
from repro.graphs.graph import Graph

#: The statistics snapshot of Table 1 in the paper (§6.3).
TABLE_1 = [
    CachedQueryStats(serial=11, hits=23, last_hit_serial=91, cs_reduction=170, cost_reduction=2600),
    CachedQueryStats(serial=13, hits=32, last_hit_serial=51, cs_reduction=80, cost_reduction=1200),
    CachedQueryStats(serial=37, hits=26, last_hit_serial=69, cs_reduction=76, cost_reduction=780),
    CachedQueryStats(serial=53, hits=13, last_hit_serial=78, cs_reduction=210, cost_reduction=360),
    CachedQueryStats(serial=82, hits=5, last_hit_serial=90, cs_reduction=120, cost_reduction=150),
    CachedQueryStats(serial=91, hits=4, last_hit_serial=95, cs_reduction=10, cost_reduction=270),
]
CURRENT_SERIAL = 100


def query_graph(serial: int) -> Graph:
    return Graph(labels=["C", "O"], edges=[(0, 1)], graph_id=serial)


def window_entry(serial, verify=1.0, filter_=0.1) -> WindowEntry:
    return WindowEntry(
        serial=serial,
        query=query_graph(serial),
        answer_ids=frozenset({serial % 3}),
        filter_time_s=filter_,
        verify_time_s=verify,
    )


def make_engine(
    capacity=6,
    policy="hd",
    admission=None,
    backend="memory",
    backend_path=None,
    cross_check=False,
):
    codec = CacheEntryCodec()
    store = CacheStore(
        capacity, backend=create_backend(backend, codec, path=backend_path)
    )
    statistics = StatisticsManager()
    index = QueryGraphIndex(max_path_length=2)
    engine = MaintenanceEngine(
        cache_store=store,
        statistics=statistics,
        index=index,
        policy=policy_by_name(policy),
        admission=admission,
        cross_check=cross_check,
    )
    return engine, store, statistics, index


def seed_table1(engine, store, statistics):
    """Install the Table 1 population as the cached state."""
    for stats in TABLE_1:
        store.add(
            CacheEntry(
                serial=stats.serial,
                query=query_graph(stats.serial),
                answer_ids=frozenset({stats.serial % 5}),
            )
        )
        statistics.register_query(stats)
    engine.rebuild_scores()


class TestPlanGolden:
    """The Table 1 running example, byte-for-byte from the plan alone."""

    def test_table1_plan_record(self):
        engine, store, statistics, _ = make_engine(capacity=6, policy="hd")
        seed_table1(engine, store, statistics)
        window = [window_entry(99), window_entry(100)]
        plan = engine.decide(window, current_serial=CURRENT_SERIAL)
        # The paper: HD sees CoV(R) < 1, delegates to PINC, evicts {53, 82};
        # utility order puts 53 (360/47) before 82 (150/18).
        assert plan.to_record() == {
            "current_serial": 100,
            "window_serials": [99, 100],
            "admitted_serials": [99, 100],
            "rejected_serials": [],
            "evicted_serials": [53, 82],
            "policy": "hd",
            "policy_delegate": "pinc",
            "admission_threshold": None,
            "victim_utilities": [[53, 360 / 47], [82, 150 / 18]],
        }

    def test_plan_json_round_trip(self):
        engine, store, statistics, _ = make_engine(capacity=6, policy="hd")
        seed_table1(engine, store, statistics)
        plan = engine.decide(
            [window_entry(99), window_entry(100)], current_serial=CURRENT_SERIAL
        )
        # The plan is pure data: a JSON round-trip reproduces it exactly.
        restored = MaintenancePlan.from_record(json.loads(json.dumps(plan.to_record())))
        assert restored == plan

    @pytest.mark.parametrize(
        "policy, expected",
        [
            ("lru", {13, 37}),
            ("pop", {11, 53}),
            ("pin", {13, 91}),
            ("pinc", {53, 82}),
            ("hd", {53, 82}),
        ],
    )
    def test_all_five_policies_match_paper(self, policy, expected):
        engine, store, statistics, _ = make_engine(capacity=6, policy=policy)
        seed_table1(engine, store, statistics)
        plan = engine.decide(
            [window_entry(99), window_entry(100)], current_serial=CURRENT_SERIAL
        )
        assert set(plan.evicted_serials) == expected

    def test_decide_is_repeatable(self):
        """Pure decide (no apply) must not consume heap state."""
        engine, store, statistics, _ = make_engine(capacity=6, policy="lru")
        seed_table1(engine, store, statistics)
        window = [window_entry(99), window_entry(100)]
        first = engine.decide(window, current_serial=CURRENT_SERIAL)
        second = engine.decide(window, current_serial=CURRENT_SERIAL)
        assert first.evicted_serials == second.evicted_serials == (13, 37)


class TestRejectedSetSemantics:
    """The O(window²) identity-by-equality scan is gone; rejection is per serial."""

    def test_rejection_partitions_by_serial(self):
        admission = AdmissionController(enabled=True, threshold=5.0)
        engine, _, _, _ = make_engine(capacity=6, admission=admission)
        window = [
            window_entry(1, verify=10.0, filter_=1.0),  # ratio 10 → admit
            window_entry(2, verify=1.0, filter_=1.0),   # ratio 1  → reject
        ]
        plan = engine.decide(window, current_serial=2)
        assert plan.admitted_serials == (1,)
        assert plan.rejected_serials == (2,)

    def test_duplicate_serial_follows_the_admitted_copy(self):
        """Regression: two window entries sharing a serial, only one of which
        passes admission.  The seed's ``entry not in admitted`` equality scan
        would have listed the serial as *both* admitted and rejected (the
        copies differ in their timing fields, so ``!=``); per-serial
        partitioning keeps the plan consistent."""
        admission = AdmissionController(enabled=True, threshold=5.0)
        engine, _, _, _ = make_engine(capacity=6, admission=admission)
        window = [
            window_entry(7, verify=10.0, filter_=1.0),  # admitted copy
            window_entry(7, verify=1.0, filter_=1.0),   # rejected copy
            window_entry(8, verify=1.0, filter_=1.0),   # genuinely rejected
        ]
        plan = engine.decide(window, current_serial=8)
        assert 7 in plan.admitted_serials
        assert 7 not in plan.rejected_serials
        assert plan.rejected_serials == (8,)
        assert not set(plan.admitted_serials) & set(plan.rejected_serials)


class TestHeapVersusOracle:
    """Incremental victim selection is identical to full-snapshot re-scoring."""

    @pytest.mark.parametrize("policy", ["lru", "pop", "pin", "pinc", "hd"])
    def test_randomized_hit_streams(self, policy):
        rng = random.Random(hash(policy) % 100_000)
        engine, store, statistics, _ = make_engine(capacity=12, policy=policy)
        # Install 12 entries through the delta path (as maintenance would).
        for serial in range(1, 13):
            store_entry = window_entry(serial, verify=rng.uniform(0.5, 3.0))
            store.apply_delta(
                [
                    CacheEntry(
                        serial=serial,
                        query=store_entry.query,
                        answer_ids=store_entry.answer_ids,
                    )
                ],
                [],
            )
            statistics.register_query(
                CachedQueryStats(serial=serial, order=2, size=1, distinct_labels=2)
            )
            engine.heap.add(statistics.snapshot(serial))
        # Randomized hit stream through the engine's hook.
        for benefiting in range(13, 113):
            serial = rng.randint(1, 12)
            engine.on_hit(
                serial=serial,
                benefiting_serial=benefiting,
                cs_reduction=float(rng.randint(0, 6)),
                cost_reduction=rng.uniform(0.0, 40.0),
                special=rng.random() < 0.1,
            )
            if benefiting % 10 == 0:
                for evict_count in (1, 3, 12):
                    outcome = engine.heap.select_victims(evict_count, benefiting)
                    assert list(outcome.victims) == engine.oracle_victims(
                        evict_count, benefiting
                    ), (policy, benefiting, evict_count)

    def test_cross_check_records_nothing_when_identical(self):
        engine, store, statistics, _ = make_engine(
            capacity=6, policy="hd", cross_check=True
        )
        seed_table1(engine, store, statistics)
        engine.decide([window_entry(99), window_entry(100)], current_serial=100)
        assert engine.oracle_mismatches == []

    def test_heap_rejects_overdraw_like_the_oracle(self):
        engine, store, statistics, _ = make_engine(capacity=6)
        seed_table1(engine, store, statistics)
        with pytest.raises(CacheError):
            engine.heap.select_victims(7, CURRENT_SERIAL)

    def test_heap_add_rejects_duplicates(self):
        heap = UtilityHeap(policy_by_name("lru"))
        heap.add(CachedQueryStats(serial=1))
        with pytest.raises(CacheError):
            heap.add(CachedQueryStats(serial=1))


class TestApplyDeltas:
    """apply() performs O(window) row/index mutations, never a rewrite."""

    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_apply_is_delta_only(self, backend):
        engine, store, statistics, index = make_engine(
            capacity=6, policy="hd", backend=backend
        )
        seed_table1(engine, store, statistics)
        for stats in TABLE_1:
            index.add(stats.serial, query_graph(stats.serial))
        rewrites_before = store.backend.op_counts.bulk_rewrites

        window = [window_entry(99), window_entry(100)]
        plan = engine.decide(window, current_serial=CURRENT_SERIAL)
        index_ops, row_ops = engine.apply(plan, window)

        assert index_ops == 4  # 2 removes + 2 adds
        assert row_ops == 4    # 2 deletes + 2 inserts
        assert store.backend.op_counts.bulk_rewrites == rewrites_before
        # Survivors keep their order; admissions append (both backends).
        assert store.serials() == [11, 13, 37, 91, 99, 100]
        assert sorted(index.serials()) == [11, 13, 37, 91, 99, 100]
        # Evicted and rejected statistics are forgotten; admitted seeded.
        assert 53 not in statistics.known_serials()
        assert 82 not in statistics.known_serials()
        assert 99 in engine.heap

    def test_apply_updates_heap_population(self):
        engine, store, statistics, _ = make_engine(capacity=6, policy="hd")
        seed_table1(engine, store, statistics)
        window = [window_entry(99), window_entry(100)]
        statistics.register_query(CachedQueryStats(serial=99))
        statistics.register_query(CachedQueryStats(serial=100))
        plan = engine.decide(window, current_serial=CURRENT_SERIAL)
        engine.apply(plan, window)
        assert len(engine.heap) == len(store)
        assert 53 not in engine.heap and 82 not in engine.heap


class TestCacheStoreApplyDelta:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_order_and_contents(self, backend):
        store = CacheStore(
            4, backend=create_backend(backend, CacheEntryCodec())
        )
        entries = {
            serial: CacheEntry(
                serial=serial,
                query=query_graph(serial),
                answer_ids=frozenset({serial}),
            )
            for serial in (1, 2, 3, 4, 5, 6)
        }
        for serial in (1, 2, 3, 4):
            store.add(entries[serial])
        store.apply_delta([entries[5], entries[6]], [2, 4])
        assert store.serials() == [1, 3, 5, 6]
        assert store.get(5).answer_ids == frozenset({5})

    def test_missing_removal_rejected(self):
        store = CacheStore(4)
        with pytest.raises(CacheError):
            store.apply_delta([], [42])

    def test_colliding_addition_rejected(self):
        store = CacheStore(4)
        entry = CacheEntry(serial=1, query=query_graph(1), answer_ids=frozenset())
        store.add(entry)
        with pytest.raises(CacheError):
            store.apply_delta([entry], [])

    def test_readding_a_removed_serial_is_allowed(self):
        store = CacheStore(4)
        entry = CacheEntry(serial=1, query=query_graph(1), answer_ids=frozenset())
        store.add(entry)
        replacement = CacheEntry(
            serial=1, query=query_graph(1), answer_ids=frozenset({9})
        )
        store.apply_delta([replacement], [1])
        assert store.get(1).answer_ids == frozenset({9})

    def test_duplicate_additions_rejected(self):
        store = CacheStore(4)
        entry = CacheEntry(serial=1, query=query_graph(1), answer_ids=frozenset())
        with pytest.raises(CacheError):
            store.apply_delta([entry, entry], [])

    def test_capacity_still_enforced(self):
        store = CacheStore(2)
        def entry(serial):
            return CacheEntry(
                serial=serial, query=query_graph(serial), answer_ids=frozenset()
            )
        store.add(entry(1))
        store.add(entry(2))
        with pytest.raises(CacheError):
            store.apply_delta([entry(3)], [])
        store.apply_delta([entry(3)], [1])
        assert store.serials() == [2, 3]


class TestAdmissionRegistry:
    def test_available_kinds(self):
        assert available_admission_controllers() == ["adaptive", "threshold"]

    def test_by_name(self):
        assert isinstance(admission_by_name("threshold"), AdmissionController)
        adaptive = admission_by_name("Adaptive", enabled=True)
        assert isinstance(adaptive, AdaptiveAdmissionController)

    def test_unknown_kind_rejected(self):
        with pytest.raises(CacheError):
            admission_by_name("fifo")

    def test_record_round_trip_threshold(self):
        controller = AdmissionController(
            enabled=True, expensive_fraction=0.5, calibration_windows=3
        )
        controller.observe_window([window_entry(1, verify=2.0)])
        record = json.loads(json.dumps(controller.state_record()))
        restored = admission_from_record(record)
        assert isinstance(restored, AdmissionController)
        assert not isinstance(restored, AdaptiveAdmissionController)
        assert restored.state_record() == controller.state_record()

    def test_record_round_trip_adaptive_mid_climb(self):
        controller = AdaptiveAdmissionController(
            enabled=True, calibration_windows=1, step_factor=2.0
        )
        controller.observe_window([window_entry(i, verify=float(i)) for i in range(1, 9)])
        controller.record_window_saving(2.0)
        controller.record_window_saving(1.0)  # reversal: direction + step mutate
        record = json.loads(json.dumps(controller.state_record()))
        restored = admission_from_record(record)
        assert isinstance(restored, AdaptiveAdmissionController)
        assert restored.state_record() == controller.state_record()
        # The restored controller continues the climb identically.
        restored.record_window_saving(3.0)
        controller.record_window_saving(3.0)
        assert restored.threshold == controller.threshold
        assert restored.threshold_history == controller.threshold_history


class TestEngineState:
    def test_state_record_is_json_compatible(self):
        engine, _, _, _ = make_engine(
            admission=AdmissionController(enabled=True, calibration_windows=2)
        )
        engine.decide([window_entry(1), window_entry(2)], current_serial=2)
        record = json.loads(json.dumps(engine.state_record()))
        assert record["policy"]["name"] == "hd"
        assert record["admission"]["windows_observed"] == 1

    def test_restore_state_resumes_calibration(self):
        engine, _, _, _ = make_engine(
            admission=AdmissionController(
                enabled=True, expensive_fraction=0.5, calibration_windows=2
            )
        )
        engine.decide(
            [window_entry(1, verify=1.0), window_entry(2, verify=9.0)],
            current_serial=2,
        )
        assert not engine.admission.calibrated

        fresh, _, _, _ = make_engine(
            admission=AdmissionController(
                enabled=True, expensive_fraction=0.5, calibration_windows=2
            )
        )
        fresh.restore_state(json.loads(json.dumps(engine.state_record())))
        # One more window completes the calibration exactly as the original
        # engine would have.
        fresh.decide(
            [window_entry(3, verify=2.0), window_entry(4, verify=8.0)],
            current_serial=4,
        )
        engine.decide(
            [window_entry(3, verify=2.0), window_entry(4, verify=8.0)],
            current_serial=4,
        )
        assert fresh.admission.calibrated
        assert fresh.admission.threshold == engine.admission.threshold

    def test_restore_none_keeps_cold_state(self):
        engine, _, _, _ = make_engine()
        before = engine.state_record()
        engine.restore_state(None)
        assert engine.state_record() == before


class TestAdaptiveFeedbackLoop:
    """The engine drives the adaptive hill-climb live, per round."""

    def make_adaptive_engine(self):
        return make_engine(
            capacity=8,
            admission=AdaptiveAdmissionController(
                enabled=True, expensive_fraction=0.5, calibration_windows=1
            ),
        )

    def test_threshold_adapts_after_each_round(self):
        engine, _, statistics, _ = self.make_adaptive_engine()
        # Round 1 calibrates; the history is seeded with the threshold.
        engine.run([window_entry(i, verify=float(i)) for i in (1, 2, 3, 4)], 4)
        assert engine.admission.calibrated
        seeded = len(engine.admission.threshold_history)
        # Hits between rounds accumulate the estimated cost saving that
        # feeds the climb on the next round.
        engine.on_hit(1, benefiting_serial=5, cs_reduction=2.0, cost_reduction=8.0)
        engine.run([window_entry(i, verify=1.0) for i in (5, 6, 7, 8)], 8)
        assert len(engine.admission.threshold_history) > seeded

    def test_pending_saving_survives_state_round_trip(self):
        engine, _, _, _ = self.make_adaptive_engine()
        engine.run([window_entry(i, verify=float(i)) for i in (1, 2, 3, 4)], 4)
        engine.on_hit(1, benefiting_serial=5, cs_reduction=1.0, cost_reduction=6.5)
        record = json.loads(json.dumps(engine.state_record()))
        assert record["window_cost_saving"] == 6.5

        fresh, _, _, _ = self.make_adaptive_engine()
        fresh.restore_state(record)
        fresh_plan, _, _, _ = fresh.run(
            [window_entry(i, verify=1.0) for i in (5, 6, 7, 8)], 8
        )
        engine_plan, _, _, _ = engine.run(
            [window_entry(i, verify=1.0) for i in (5, 6, 7, 8)], 8
        )
        # Same admission decisions at decide time, and — because the pending
        # saving survived — the same post-round hill-climb step.
        assert fresh_plan.admitted_serials == engine_plan.admitted_serials
        assert fresh_plan.admission_threshold == engine_plan.admission_threshold
        assert fresh.admission.threshold == engine.admission.threshold

    def test_threshold_kind_gets_no_feedback(self):
        engine, _, _, _ = make_engine(
            admission=AdmissionController(enabled=True, calibration_windows=1)
        )
        engine.run([window_entry(i, verify=float(i)) for i in (1, 2, 3, 4)], 4)
        threshold = engine.admission.threshold
        engine.on_hit(1, benefiting_serial=5, cs_reduction=1.0, cost_reduction=9.0)
        engine.run([window_entry(i, verify=1.0) for i in (5, 6, 7, 8)], 8)
        assert engine.admission.threshold == threshold
