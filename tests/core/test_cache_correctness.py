"""End-to-end correctness of GraphCache: no false positives, no false negatives.

The central claim of the paper (proved formally in its companion paper [34])
is that GraphCache returns exactly the answer set Method M would return on
its own, for every query, regardless of replacement policy, cache/window
sizes, admission control, or query mode.  These tests exercise that claim on
generated datasets and workloads, including property-based variants.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cache import GraphCache
from repro.core.config import GraphCacheConfig
from repro.exceptions import CacheError
from repro.ftv import CTIndex, GraphGrepSX
from repro.graphs.generators import aids_like
from repro.isomorphism import VF2PlusMatcher
from repro.methods import SIMethod, execute_query
from repro.workloads import generate_type_a

MATCHER = VF2PlusMatcher()


def baseline_answers(method, queries, query_mode="subgraph"):
    return [execute_query(method, q, query_mode=query_mode).answer_ids for q in queries]


@pytest.fixture(scope="module")
def module_dataset():
    return aids_like(scale=0.08, seed=23)


@pytest.fixture(scope="module")
def module_workload(module_dataset):
    return generate_type_a(
        module_dataset, "ZZ", 40, query_sizes=(3, 5, 8, 12), seed=2
    )


class TestAnswerEquivalence:
    @pytest.mark.parametrize("policy", ["lru", "pop", "pin", "pinc", "hd"])
    def test_si_method_all_policies(self, module_dataset, module_workload, policy):
        method = SIMethod(module_dataset, matcher="vf2plus")
        expected = baseline_answers(method, module_workload)
        cache = GraphCache(
            method,
            GraphCacheConfig(cache_capacity=8, window_size=4, replacement_policy=policy),
        )
        for query, answer in zip(module_workload, expected, strict=True):
            assert cache.query(query).answer_ids == answer

    def test_ftv_method_ggsx(self, module_dataset, module_workload):
        method = GraphGrepSX(module_dataset, max_path_length=3)
        expected = baseline_answers(method, module_workload)
        cache = GraphCache(method, GraphCacheConfig(cache_capacity=8, window_size=4))
        for query, answer in zip(module_workload, expected, strict=True):
            assert cache.query(query).answer_ids == answer

    def test_ftv_method_ctindex(self, module_dataset, module_workload):
        method = CTIndex(module_dataset, max_tree_size=3, max_cycle_size=4, fingerprint_bits=1024)
        expected = baseline_answers(method, module_workload)
        cache = GraphCache(method, GraphCacheConfig(cache_capacity=8, window_size=4))
        for query, answer in zip(module_workload, expected, strict=True):
            assert cache.query(query).answer_ids == answer

    def test_with_admission_control(self, module_dataset, module_workload):
        method = SIMethod(module_dataset, matcher="vf2plus")
        expected = baseline_answers(method, module_workload)
        cache = GraphCache(
            method,
            GraphCacheConfig(
                cache_capacity=8, window_size=4, admission_control=True,
                admission_expensive_fraction=0.3,
            ),
        )
        for query, answer in zip(module_workload, expected, strict=True):
            assert cache.query(query).answer_ids == answer

    def test_tiny_cache_and_window(self, module_dataset, module_workload):
        method = SIMethod(module_dataset, matcher="vf2plus")
        expected = baseline_answers(method, module_workload)
        cache = GraphCache(method, GraphCacheConfig(cache_capacity=1, window_size=1))
        for query, answer in zip(module_workload, expected, strict=True):
            assert cache.query(query).answer_ids == answer

    def test_supergraph_query_mode(self, module_dataset):
        method = SIMethod(module_dataset, matcher="vf2plus")
        # Supergraph queries: use whole dataset graphs (and fragments) as queries.
        rng = random.Random(4)
        queries = []
        for _ in range(15):
            source = module_dataset[rng.randrange(len(module_dataset))]
            queries.append(source)
        expected = baseline_answers(method, queries, query_mode="supergraph")
        cache = GraphCache(
            method,
            GraphCacheConfig(cache_capacity=6, window_size=3, query_mode="supergraph"),
        )
        for query, answer in zip(queries, expected, strict=True):
            assert cache.query(query).answer_ids == answer

    def test_supergraph_mode_requires_capable_method(self, module_dataset):
        method = GraphGrepSX(module_dataset, max_path_length=2)
        with pytest.raises(CacheError):
            GraphCache(method, GraphCacheConfig(query_mode="supergraph"))


class TestPropertyBased:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 10_000),
        capacity=st.integers(1, 10),
        window=st.integers(1, 6),
        policy=st.sampled_from(["lru", "pop", "pin", "pinc", "hd"]),
    )
    def test_random_configurations_preserve_answers(self, seed, capacity, window, policy):
        dataset = aids_like(scale=0.05, seed=seed % 7)
        workload = generate_type_a(
            dataset, "ZZ", 15, query_sizes=(3, 5, 8), seed=seed
        )
        method = SIMethod(dataset, matcher="vf2plus")
        expected = baseline_answers(method, workload)
        cache = GraphCache(
            method,
            GraphCacheConfig(
                cache_capacity=capacity,
                window_size=window,
                replacement_policy=policy,
            ),
        )
        for query, answer in zip(workload, expected, strict=True):
            result = cache.query(query)
            assert result.answer_ids == answer
            # Internal consistency of the per-query accounting.
            assert result.subiso_tests == result.final_candidates
            assert result.method_candidates >= result.final_candidates
