"""Tests for the Window Manager (batched cache updates)."""

from __future__ import annotations

from repro.core.policies import AdmissionController, WindowManager, policy_by_name
from repro.core.query_index import QueryGraphIndex
from repro.core.statistics import StatisticsManager
from repro.core.stores import CacheStore, WindowEntry, WindowStore
from repro.graphs.graph import Graph


def make_manager(cache_capacity=4, window_size=2, policy="lru", admission=None):
    cache_store = CacheStore(cache_capacity)
    window_store = WindowStore(window_size)
    statistics = StatisticsManager()
    index = QueryGraphIndex(max_path_length=2)
    manager = WindowManager(
        cache_store=cache_store,
        window_store=window_store,
        statistics=statistics,
        index=index,
        policy=policy_by_name(policy),
        admission=admission or AdmissionController(enabled=False),
    )
    return manager, cache_store, window_store, statistics, index


def entry(serial, verify=1.0, filter_=0.1):
    return WindowEntry(
        serial=serial,
        query=Graph(labels=["C", "O"], edges=[(0, 1)], graph_id=serial),
        answer_ids=frozenset({serial % 3}),
        filter_time_s=filter_,
        verify_time_s=verify,
    )


class TestWindowFilling:
    def test_no_maintenance_until_window_full(self):
        manager, cache_store, window_store, _, _ = make_manager(window_size=3)
        assert manager.add_query(entry(1)) is None
        assert manager.add_query(entry(2)) is None
        assert len(window_store) == 2
        assert len(cache_store) == 0

    def test_maintenance_on_full_window(self):
        manager, cache_store, window_store, _, index = make_manager(window_size=2)
        manager.add_query(entry(1))
        report = manager.add_query(entry(2))
        assert report is not None
        assert report.window_queries == 2
        assert sorted(report.admitted_serials) == [1, 2]
        assert report.evicted_serials == ()
        assert len(cache_store) == 2
        assert len(window_store) == 0
        assert sorted(index.serials()) == [1, 2]

    def test_statistics_registered_for_window_queries(self):
        manager, _, _, statistics, _ = make_manager(window_size=3)
        manager.add_query(entry(7, verify=2.0, filter_=0.5))
        snapshot = statistics.snapshot(7)
        assert snapshot.order == 2
        assert snapshot.verify_time_s == 2.0
        assert snapshot.filter_time_s == 0.5


class TestEviction:
    def test_eviction_when_cache_full(self):
        manager, cache_store, _, statistics, index = make_manager(
            cache_capacity=2, window_size=2, policy="lru"
        )
        manager.add_query(entry(1))
        manager.add_query(entry(2))  # cache now {1, 2}
        manager.add_query(entry(3))
        report = manager.add_query(entry(4))
        assert report is not None
        assert len(report.evicted_serials) == 2
        assert len(cache_store) == 2
        assert sorted(cache_store.serials()) == [3, 4]
        # Evicted statistics are forgotten.
        for serial in report.evicted_serials:
            assert serial not in statistics.known_serials()
        assert sorted(index.serials()) == [3, 4]

    def test_partial_eviction_uses_free_slots(self):
        manager, cache_store, _, _, _ = make_manager(cache_capacity=3, window_size=2)
        manager.add_query(entry(1))
        manager.add_query(entry(2))  # cache {1,2}, one slot free
        manager.add_query(entry(3))
        report = manager.add_query(entry(4))
        assert len(report.evicted_serials) == 1
        assert len(cache_store) == 3

    def test_window_larger_than_cache(self):
        manager, cache_store, _, _, _ = make_manager(cache_capacity=2, window_size=4)
        for serial in range(1, 4):
            manager.add_query(entry(serial))
        report = manager.add_query(entry(4))
        assert report is not None
        assert len(cache_store) <= 2
        # Only the most recent admitted queries fit.
        assert set(cache_store.serials()) == {3, 4}


class TestAdmissionIntegration:
    def test_rejected_queries_not_cached(self):
        admission = AdmissionController(enabled=True, threshold=5.0)
        manager, cache_store, _, statistics, _ = make_manager(
            window_size=2, admission=admission
        )
        manager.add_query(entry(1, verify=10.0, filter_=1.0))  # ratio 10 → admit
        report = manager.add_query(entry(2, verify=1.0, filter_=1.0))  # ratio 1 → reject
        assert report.admitted_serials == (1,)
        assert report.rejected_serials == (2,)
        assert cache_store.serials() == [1]
        assert 2 not in statistics.known_serials()

    def test_observation_feeds_calibration(self):
        admission = AdmissionController(
            enabled=True, expensive_fraction=0.5, calibration_windows=1
        )
        manager, _, _, _, _ = make_manager(window_size=2, admission=admission)
        manager.add_query(entry(1, verify=1.0))
        manager.add_query(entry(2, verify=9.0))
        assert admission.calibrated


class TestAccounting:
    def test_reports_accumulate(self):
        manager, _, _, _, _ = make_manager(window_size=1)
        manager.add_query(entry(1))
        manager.add_query(entry(2))
        assert len(manager.reports) == 2
        assert manager.total_maintenance_s >= 0.0
        assert manager.reports[0].cache_size_after == 1

    def test_policy_and_admission_exposed(self):
        manager, _, _, _, _ = make_manager(policy="pin")
        assert manager.policy.name == "pin"
        assert manager.admission.enabled is False
