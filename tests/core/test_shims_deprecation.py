"""The PR-4 re-export shims warn on import; repro.core itself stays clean."""

from __future__ import annotations

import importlib
import os
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")

SHIMS = (
    "repro.core.window",
    "repro.core.admission",
    "repro.core.adaptive_admission",
    "repro.core.replacement",
)


@pytest.mark.parametrize("module", SHIMS)
def test_shim_import_emits_deprecation_warning(module: str) -> None:
    sys.modules.pop(module, None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        importlib.import_module(module)
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "repro.core.policies" in str(deprecations[0].message)


@pytest.mark.parametrize("module", SHIMS)
def test_shim_still_reexports_the_policies_names(module: str) -> None:
    sys.modules.pop(module, None)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        shim = importlib.import_module(module)
    policies = importlib.import_module("repro.core.policies")
    for name in shim.__all__:
        assert getattr(shim, name) is getattr(policies, name)


def test_repro_core_imports_warning_free() -> None:
    """``import repro.core`` must not touch any deprecated shim.

    Run in a fresh interpreter with DeprecationWarning escalated to an
    error, so a stray shim import anywhere in the package graph fails loud.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [
            sys.executable,
            "-W",
            "error::DeprecationWarning",
            "-c",
            "import repro.core; import repro.core.policies",
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
