"""Tests for the cache replacement policies, including the paper's Table 1.

The running example of Table 1 (§6.3) is reproduced exactly: six cached
queries with given statistics, replacement invoked at serial 100, two entries
to evict.  The expected victims per policy are stated in the paper:
LRU → {13, 37}, POP → {11, 53}, PIN → {13, 91}, PINC → {53, 82},
HD → CoV(R) ≈ 0.65 < 1 → PINC → {53, 82}.
"""

from __future__ import annotations

import pytest

from repro.core.policies import (
    HybridPolicy,
    LRUPolicy,
    PINCPolicy,
    PINPolicy,
    POPPolicy,
    available_policies,
    policy_by_name,
    squared_coefficient_of_variation,
)
from repro.core.statistics import CachedQueryStats
from repro.exceptions import CacheError

#: The statistics snapshot of Table 1 in the paper.
TABLE_1 = [
    CachedQueryStats(serial=11, hits=23, last_hit_serial=91, cs_reduction=170, cost_reduction=2600),
    CachedQueryStats(serial=13, hits=32, last_hit_serial=51, cs_reduction=80, cost_reduction=1200),
    CachedQueryStats(serial=37, hits=26, last_hit_serial=69, cs_reduction=76, cost_reduction=780),
    CachedQueryStats(serial=53, hits=13, last_hit_serial=78, cs_reduction=210, cost_reduction=360),
    CachedQueryStats(serial=82, hits=5, last_hit_serial=90, cs_reduction=120, cost_reduction=150),
    CachedQueryStats(serial=91, hits=4, last_hit_serial=95, cs_reduction=10, cost_reduction=270),
]
CURRENT_SERIAL = 100


class TestTable1RunningExample:
    def test_lru_evicts_13_and_37(self):
        victims = LRUPolicy().select_victims(TABLE_1, 2, CURRENT_SERIAL)
        assert set(victims) == {13, 37}

    def test_pop_evicts_11_and_53(self):
        victims = POPPolicy().select_victims(TABLE_1, 2, CURRENT_SERIAL)
        assert set(victims) == {11, 53}

    def test_pin_evicts_13_and_91(self):
        victims = PINPolicy().select_victims(TABLE_1, 2, CURRENT_SERIAL)
        assert set(victims) == {13, 91}

    def test_pinc_evicts_53_and_82(self):
        victims = PINCPolicy().select_victims(TABLE_1, 2, CURRENT_SERIAL)
        assert set(victims) == {53, 82}

    def test_hd_cov_below_one_uses_pinc(self):
        policy = HybridPolicy()
        cov_squared = squared_coefficient_of_variation([s.cs_reduction for s in TABLE_1])
        assert cov_squared < 1.0
        assert cov_squared == pytest.approx(0.65 ** 2, abs=0.02)
        assert isinstance(policy.choose(TABLE_1), PINCPolicy)
        victims = policy.select_victims(TABLE_1, 2, CURRENT_SERIAL)
        assert set(victims) == {53, 82}


class TestUtilityFormulas:
    def test_lru_utility_is_last_hit(self):
        stats = TABLE_1[0]
        assert LRUPolicy().utility(stats, CURRENT_SERIAL) == 91

    def test_lru_never_hit_falls_back_to_own_serial(self):
        stats = CachedQueryStats(serial=42)
        assert LRUPolicy().utility(stats, CURRENT_SERIAL) == 42

    def test_pop_utility(self):
        stats = TABLE_1[0]  # H=23, A=100-11=89
        assert POPPolicy().utility(stats, CURRENT_SERIAL) == pytest.approx(23 / 89)

    def test_pin_utility(self):
        stats = TABLE_1[3]  # R=210, A=47
        assert PINPolicy().utility(stats, CURRENT_SERIAL) == pytest.approx(210 / 47)

    def test_pinc_utility(self):
        stats = TABLE_1[5]  # C=270, A=9
        assert PINCPolicy().utility(stats, CURRENT_SERIAL) == pytest.approx(270 / 9)

    def test_age_clamped_to_one(self):
        stats = CachedQueryStats(serial=100, hits=7)
        assert POPPolicy().utility(stats, 100) == pytest.approx(7.0)

    def test_utilities_bulk(self):
        utilities = PINPolicy().utilities(TABLE_1, CURRENT_SERIAL)
        assert set(utilities) == {11, 13, 37, 53, 82, 91}


class TestHybridSwitch:
    def test_high_variability_uses_pin(self):
        snapshots = [
            CachedQueryStats(serial=1, cs_reduction=1, cost_reduction=10),
            CachedQueryStats(serial=2, cs_reduction=1, cost_reduction=10),
            CachedQueryStats(serial=3, cs_reduction=1000, cost_reduction=10),
        ]
        policy = HybridPolicy()
        assert squared_coefficient_of_variation([s.cs_reduction for s in snapshots]) > 1.0
        assert isinstance(policy.choose(snapshots), PINPolicy)

    def test_cov_of_constant_values_is_zero(self):
        assert squared_coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0

    def test_cov_of_short_sequences_is_zero(self):
        assert squared_coefficient_of_variation([3.0]) == 0.0
        assert squared_coefficient_of_variation([]) == 0.0

    def test_cov_zero_mean(self):
        assert squared_coefficient_of_variation([0.0, 0.0]) == 0.0


class TestSelectVictims:
    def test_zero_evictions(self):
        assert LRUPolicy().select_victims(TABLE_1, 0, CURRENT_SERIAL) == []

    def test_negative_evictions_rejected(self):
        with pytest.raises(CacheError):
            LRUPolicy().select_victims(TABLE_1, -1, CURRENT_SERIAL)

    def test_too_many_evictions_rejected(self):
        with pytest.raises(CacheError):
            LRUPolicy().select_victims(TABLE_1, 7, CURRENT_SERIAL)

    def test_tie_break_prefers_older_entry(self):
        snapshots = [
            CachedQueryStats(serial=10, hits=0),
            CachedQueryStats(serial=20, hits=0),
        ]
        assert POPPolicy().select_victims(snapshots, 1, 100) == [10]

    def test_evicting_all_entries(self):
        victims = PINPolicy().select_victims(TABLE_1, len(TABLE_1), CURRENT_SERIAL)
        assert sorted(victims) == sorted(s.serial for s in TABLE_1)


class TestPolicyRegistry:
    def test_available_policies(self):
        assert set(available_policies()) == {"lru", "pop", "pin", "pinc", "hd"}

    @pytest.mark.parametrize("name, cls", [
        ("lru", LRUPolicy),
        ("POP", POPPolicy),
        ("pin", PINPolicy),
        ("PinC", PINCPolicy),
        ("hd", HybridPolicy),
    ])
    def test_policy_by_name(self, name, cls):
        assert isinstance(policy_by_name(name), cls)

    def test_unknown_policy(self):
        with pytest.raises(CacheError):
            policy_by_name("fifo")

    def test_repr(self):
        assert "lru" in repr(LRUPolicy())
