"""ShardedGraphCache: routing, counter-identity and aggregation invariants.

The routing invariant pinned here (and documented in the README):

* routing is a **stable structural hash** — independent of the process, of
  ``PYTHONHASHSEED`` and of cache state;
* ``shards=1`` is counter-identical to a plain :class:`GraphCache`;
* per-shard work counters are deterministic for a given workload.

The cross-shard *concurrency* behaviour lives in
``tests/core/test_sharding_concurrency.py`` (auto-marked ``concurrency``).
"""

from __future__ import annotations

import functools
from collections import Counter

import pytest

from repro.core import (
    GraphCache,
    GraphCacheConfig,
    GraphCacheService,
    ShardedGraphCache,
    build_cache,
    stable_feature_hash,
)
from repro.exceptions import CacheError
from repro.graphs.generators import aids_like
from repro.methods import SIMethod
from repro.workloads import generate_type_a


@functools.lru_cache(maxsize=2)
def _dataset(seed: int = 1):
    return aids_like(scale=0.05, seed=seed)


def _workload(count=30, seed=7):
    return list(
        generate_type_a(_dataset(), "ZZ", count, query_sizes=(3, 5, 8), seed=seed)
    )


def _method():
    return SIMethod(_dataset(), matcher="vf2plus")


def _result_fields(result):
    return (
        result.answer_ids,
        result.method_candidates,
        result.final_candidates,
        result.subiso_tests,
        result.containment_tests,
        result.shortcut,
    )


def _counters(cache) -> dict:
    runtime = cache.runtime_statistics
    return {
        "queries_processed": runtime.queries_processed,
        "subiso_tests": runtime.subiso_tests,
        "subiso_tests_alleviated": runtime.subiso_tests_alleviated,
        "containment_tests": runtime.containment_tests,
        "containment_memo_hits": runtime.containment_memo_hits,
        "cache_hits": runtime.cache_hits,
        "exact_hits": runtime.exact_hits,
        "empty_shortcuts": runtime.empty_shortcuts,
    }


class TestStableFeatureHash:
    def test_deterministic_and_order_independent(self):
        features = Counter({("C", "O"): 2, ("C",): 3})
        same_other_order = Counter()
        same_other_order[("C",)] = 3
        same_other_order[("C", "O")] = 2
        assert stable_feature_hash(features) == stable_feature_hash(same_other_order)

    def test_distinguishes_counts_and_labels(self):
        base = Counter({("C", "O"): 2})
        assert stable_feature_hash(base) != stable_feature_hash(Counter({("C", "O"): 3}))
        assert stable_feature_hash(base) != stable_feature_hash(Counter({("C", "N"): 2}))


class TestRouting:
    def test_routing_is_stable_across_instances(self):
        workload = _workload()
        first = ShardedGraphCache(_method(), GraphCacheConfig(shards=4))
        second = ShardedGraphCache(_method(), GraphCacheConfig(shards=4))
        assert [first.shard_of(q) for q in workload] == [
            second.shard_of(q) for q in workload
        ]

    def test_routing_is_structural(self):
        """A structurally equal rebuilt query lands on the same shard."""
        from repro.graphs.io import graph_from_text, graph_to_text

        sharded = ShardedGraphCache(_method(), GraphCacheConfig(shards=4))
        for query in _workload(count=5):
            rebuilt = graph_from_text(graph_to_text(query))
            assert sharded.shard_of(query) == sharded.shard_of(rebuilt)

    def test_single_shard_routes_everything_to_zero(self):
        sharded = ShardedGraphCache(_method(), GraphCacheConfig(shards=1))
        assert all(sharded.shard_of(q) == 0 for q in _workload(count=10))

    def test_workload_spreads_over_shards(self):
        sharded = ShardedGraphCache(_method(), GraphCacheConfig(shards=4))
        used = {sharded.shard_of(q) for q in _workload(count=40)}
        assert len(used) >= 2  # structural hashing actually spreads load

    def test_shard_for_returns_the_owning_cache(self):
        sharded = ShardedGraphCache(_method(), GraphCacheConfig(shards=4))
        query = _workload(count=1)[0]
        assert sharded.shard_for(query) is sharded.shards[sharded.shard_of(query)]


class TestCounterIdentity:
    """``shards=1`` ≡ plain GraphCache, per-result and per-counter."""

    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_single_shard_matches_plain_cache(self, backend):
        workload = _workload()
        config = GraphCacheConfig(
            cache_capacity=6, window_size=3, backend=backend, shards=1
        )
        plain = GraphCache(_method(), config)
        plain_results = [plain.query(q) for q in workload]

        sharded = ShardedGraphCache(_method(), config)
        sharded_results = [sharded.query(q) for q in workload]

        for mine, theirs in zip(sharded_results, plain_results, strict=True):
            assert _result_fields(mine) == _result_fields(theirs)
        assert _counters(sharded) == _counters(plain)
        plain.close()
        sharded.close()

    def test_sharded_answers_match_plain_cache(self):
        """Answer sets are cache-structure independent (paper correctness)."""
        workload = _workload()
        config = GraphCacheConfig(cache_capacity=6, window_size=3)
        plain = GraphCache(_method(), config)
        sharded = ShardedGraphCache(_method(), config.with_shards(3))
        for query in workload:
            assert sharded.query(query).answer_ids == plain.query(query).answer_ids

    def test_service_jobs_over_single_shard_sharded_cache(self):
        """Regression: query_many(jobs>1) over ShardedGraphCache(shards=1)
        must take the sharded path (there is no prefilter hook to fall into),
        and still match the plain cache result-for-result."""
        workload = _workload()
        config = GraphCacheConfig(cache_capacity=6, window_size=3, shards=1)
        plain = GraphCache(_method(), config)
        plain_results = [plain.query(q) for q in workload]

        service = GraphCacheService(ShardedGraphCache(_method(), config))
        concurrent_results = service.query_many(workload, jobs=2)
        for mine, theirs in zip(concurrent_results, plain_results, strict=True):
            assert _result_fields(mine) == _result_fields(theirs)
        assert _counters(service.cache) == _counters(plain)

    def test_per_shard_counters_deterministic(self):
        workload = _workload()
        config = GraphCacheConfig(cache_capacity=6, window_size=3, shards=3)
        first = ShardedGraphCache(_method(), config)
        second = ShardedGraphCache(_method(), config)
        for query in workload:
            first.query(query)
            second.query(query)
        assert [_counters(s) for s in first.shards] == [
            _counters(s) for s in second.shards
        ]


class TestAggregation:
    def test_runtime_statistics_sum_over_shards(self):
        workload = _workload()
        sharded = ShardedGraphCache(
            _method(), GraphCacheConfig(cache_capacity=6, window_size=3, shards=3)
        )
        for query in workload:
            sharded.query(query)
        aggregate = _counters(sharded)
        shard_wise = [_counters(shard) for shard in sharded.shards]
        for key, value in aggregate.items():
            assert value == sum(counters[key] for counters in shard_wise)
        assert aggregate["queries_processed"] == len(workload)
        assert len(sharded) == sum(len(shard) for shard in sharded.shards)
        assert len(sharded.results()) == len(workload)
        assert sharded.cache_size_bytes() > 0

    def test_shard_statistics_indexed_by_shard(self):
        sharded = ShardedGraphCache(_method(), GraphCacheConfig(shards=3))
        assert len(sharded.shard_statistics()) == 3


class TestConstruction:
    def test_build_cache_dispatches_on_shards(self):
        assert isinstance(build_cache(_method(), GraphCacheConfig(shards=1)), GraphCache)
        sharded = build_cache(_method(), GraphCacheConfig(shards=4))
        assert isinstance(sharded, ShardedGraphCache)
        assert sharded.shard_count == 4

    def test_shard_configs_are_single_shard(self):
        sharded = ShardedGraphCache(_method(), GraphCacheConfig(shards=4))
        assert all(shard.config.shards == 1 for shard in sharded.shards)

    def test_sqlite_shards_get_distinct_database_files(self, tmp_path):
        path = tmp_path / "cache.db"
        sharded = ShardedGraphCache(
            _method(),
            GraphCacheConfig(shards=3, backend="sqlite", backend_path=str(path)),
        )
        paths = [shard.config.backend_path for shard in sharded.shards]
        assert len(set(paths)) == 3
        assert all(p.startswith(str(path)) for p in paths)
        sharded.close()

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(CacheError):
            GraphCacheConfig(shards=0)

    def test_config_label_carries_storage_choices(self):
        assert GraphCacheConfig().label() == "c100-b20"
        assert GraphCacheConfig(shards=4).label() == "c100-b20-s4"
        assert GraphCacheConfig(backend="sqlite").label() == "c100-b20-sqlite"
        assert (
            GraphCacheConfig(shards=2, backend="sqlite").label() == "c100-b20-s2-sqlite"
        )
