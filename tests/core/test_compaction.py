"""Automatic delta compaction: threshold policy, scheduling, answer identity.

``GraphCacheConfig.compaction_threshold`` arms a policy that runs after
every :meth:`GraphCache.seal_delta_storage`: any mmap backend whose
``dead_bytes / live_bytes`` ratio crossed the threshold gets a full
compacting fold *scheduled through the maintenance scheduler* — inline
under ``sync``, on the worker thread (never the query thread) under
``background``.  These tests pin the trigger arithmetic, the off-query-path
scheduling, the post-fold arena state (dead bytes reclaimed, answers
identical from the folded extents) and the per-event report shape.
"""

from __future__ import annotations

import functools
import threading

import pytest

from repro.core.cache import GraphCache
from repro.core.config import GraphCacheConfig
from repro.core.sharding import ShardedGraphCache
from repro.exceptions import CacheError
from repro.ftv.ggsx import GraphGrepSX
from repro.graphs.generators import aids_like
from repro.workloads import generate_type_a


@functools.lru_cache(maxsize=1)
def _dataset():
    return aids_like(scale=0.05, seed=1)


def _workload(count=60, seed=0):
    return list(
        generate_type_a(_dataset(), "ZZ", count, query_sizes=(3, 5, 8), seed=seed)
    )


def _config(tmp_path, **overrides):
    defaults = dict(
        backend="mmap",
        backend_path=str(tmp_path / "cache.db"),
        cache_capacity=10,
        window_size=5,
        compaction_threshold=0.001,
    )
    defaults.update(overrides)
    return GraphCacheConfig(**defaults)


def _churn(cache, queries):
    """Run ``queries`` in two halves around a delta publish.

    Dead bytes only accrue when *sealed* records are later evicted, so the
    mid-run publish is what lets the second half's churn raise the
    dead/live ratio.
    """
    half = len(queries) // 2
    for query in queries[:half]:
        cache.query(query)
    cache.drain_maintenance()
    cache.seal_delta_storage()
    for query in queries[half:]:
        cache.query(query)
    cache.drain_maintenance()
    return cache.seal_delta_storage()


class TestConfigValidation:
    def test_threshold_must_be_positive(self):
        with pytest.raises(CacheError, match="compaction_threshold"):
            GraphCacheConfig(compaction_threshold=0.0)
        with pytest.raises(CacheError, match="compaction_threshold"):
            GraphCacheConfig(compaction_threshold=-1.0)

    def test_none_disables(self):
        assert GraphCacheConfig().compaction_threshold is None

    def test_with_compaction_and_label(self):
        config = GraphCacheConfig().with_compaction(0.5)
        assert config.compaction_threshold == 0.5
        assert "compact0.5" in config.label()


class TestAutomaticCompaction:
    def test_churn_crossing_threshold_folds_dead_bytes_to_zero(self, tmp_path):
        cache = GraphCache(GraphGrepSX(_dataset()), _config(tmp_path))
        _churn(cache, _workload())
        cache.drain_maintenance()
        events = cache.compaction_events
        assert events, "threshold crossed but no compaction ran"
        for event in events:
            assert event["trigger_ratio"] >= 0.001
            assert event["bytes_reclaimed"] > 0
            assert event["segments_folded"] >= 1
            assert event["dead_bytes"] == 0
        for backend in cache.storage_backends():
            assert backend.arena_statistics()["dead_bytes"] == 0
        cache.close()

    def test_high_threshold_never_folds(self, tmp_path):
        cache = GraphCache(
            GraphGrepSX(_dataset()), _config(tmp_path, compaction_threshold=1e9)
        )
        _churn(cache, _workload())
        cache.drain_maintenance()
        assert cache.compaction_events == []
        assert any(
            backend.arena_statistics()["dead_bytes"] > 0
            for backend in cache.storage_backends()
        ), "churn produced no dead bytes; the trigger test is vacuous"
        cache.close()

    def test_no_threshold_means_no_policy(self, tmp_path):
        cache = GraphCache(
            GraphGrepSX(_dataset()), _config(tmp_path, compaction_threshold=None)
        )
        _churn(cache, _workload())
        cache.drain_maintenance()
        assert cache.compaction_events == []
        cache.close()

    def test_answers_identical_after_fold(self, tmp_path):
        queries = _workload()
        probe = _workload(count=12, seed=99)
        baseline = GraphCache(
            GraphGrepSX(_dataset()),
            _config(tmp_path / "base", compaction_threshold=None),
        )
        _churn(baseline, queries)
        expected = [baseline.query(query).answer_ids for query in probe]
        baseline.close()

        compacted = GraphCache(GraphGrepSX(_dataset()), _config(tmp_path / "fold"))
        _churn(compacted, queries)
        compacted.drain_maintenance()
        assert compacted.compaction_events
        answers = [compacted.query(query).answer_ids for query in probe]
        compacted.close()
        assert answers == expected

    def test_sharded_cache_aggregates_events(self, tmp_path):
        cache = ShardedGraphCache(GraphGrepSX(_dataset()), _config(tmp_path, shards=2))
        _churn(cache, _workload())
        cache.drain_maintenance()
        assert cache.compaction_events, "no shard compacted"
        cache.close()


class TestScheduling:
    def test_sync_mode_runs_inline(self, tmp_path):
        cache = GraphCache(
            GraphGrepSX(_dataset()), _config(tmp_path, maintenance_mode="sync")
        )
        _churn(cache, _workload())
        counters = cache.maintenance_scheduler.counters
        assert cache.compaction_events
        assert counters.inline_tasks > 0
        assert counters.worker_tasks == 0
        cache.close()

    def test_background_mode_keeps_folds_off_the_query_thread(self, tmp_path):
        cache = GraphCache(
            GraphGrepSX(_dataset()), _config(tmp_path, maintenance_mode="background")
        )
        _churn(cache, _workload())
        cache.drain_maintenance()
        counters = cache.maintenance_scheduler.counters
        assert cache.compaction_events
        assert counters.worker_tasks > 0
        assert counters.inline_tasks == 0
        assert threading.get_ident() not in counters.task_thread_idents
        cache.close()

    def test_barrier_mode_is_deterministic(self, tmp_path):
        cache = GraphCache(
            GraphGrepSX(_dataset()), _config(tmp_path, maintenance_mode="barrier")
        )
        _churn(cache, _workload())
        # Barrier submit blocks until the fold applied: no drain needed.
        assert cache.compaction_events
        for backend in cache.storage_backends():
            assert backend.arena_statistics()["dead_bytes"] == 0
        cache.close()


class TestManualCompact:
    def test_backend_compact_reports_reclaim(self, tmp_path):
        cache = GraphCache(
            GraphGrepSX(_dataset()), _config(tmp_path, compaction_threshold=None)
        )
        _churn(cache, _workload())
        backend = next(
            backend
            for backend in cache.storage_backends()
            if backend.arena_statistics()["dead_bytes"] > 0
        )
        before = backend.arena_statistics()
        event = backend.compact()
        assert event["table"] == before["table"]
        assert event["bytes_reclaimed"] == before["dead_bytes"]
        assert event["dead_bytes"] == 0
        assert backend.arena_statistics()["dead_bytes"] == 0
        cache.close()
