"""Smoke tests: every example script must run end-to-end.

The examples double as integration tests of the public API; they are executed
in-process (imported and their ``main()`` called) with stdout captured, so a
broken example fails the test suite rather than only being discovered by a
user.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_directory_has_at_least_three(self):
        assert len(EXAMPLES) >= 3

    @pytest.mark.parametrize("name", EXAMPLES)
    def test_example_runs(self, name, capsys, monkeypatch):
        module = load_example(name)
        assert hasattr(module, "main"), f"{name} must expose a main() function"
        module.main()
        output = capsys.readouterr().out
        assert output.strip(), f"{name} produced no output"

    def test_quickstart_reports_speedup(self, capsys):
        module = load_example("quickstart.py")
        module.main()
        output = capsys.readouterr().out
        assert "speedup" in output
        assert "cache hits" in output
