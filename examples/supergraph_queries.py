#!/usr/bin/env python3
"""Supergraph queries through GraphCache.

A supergraph query asks the inverse question of a subgraph query: *which
dataset graphs are contained in my query graph?*  This is the natural shape
for "find all known fragments / motifs inside this new compound" workloads.
GraphCache handles both query types with the same machinery (§5.1); the roles
of the cached subgraph/supergraph relationships are simply swapped.

Run with::

    python examples/supergraph_queries.py
"""

from __future__ import annotations

import random

from repro import GraphCache, GraphCacheConfig
from repro.graphs.dataset import GraphDataset
from repro.graphs.generators import aids_like
from repro.methods import SIMethod, execute_query
from repro.workloads import extract_query_bfs
from repro.workloads.zipf import ZipfSampler


def main() -> None:
    # The stored dataset is a library of small fragments (functional groups /
    # motifs) extracted from a pool of molecules.
    molecules = aids_like(scale=0.15, seed=19)
    rng = random.Random(3)
    fragments = []
    for molecule in molecules:
        for size in (4, 6, 8):
            fragment = extract_query_bfs(molecule, rng.randrange(molecule.order), size)
            if fragment is not None:
                fragments.append(fragment)
    dataset = GraphDataset(fragments, name="fragment-library")
    print(f"dataset: {dataset.name} with {len(dataset)} fragment graphs")

    method = SIMethod(dataset, matcher="vf2plus")
    cache = GraphCache(
        method,
        GraphCacheConfig(cache_capacity=15, window_size=5, query_mode="supergraph"),
    )

    # Queries: full compounds, asked for the known fragments they contain.
    # Popular compounds repeat (Zipf), which is what the cache exploits.
    sampler = ZipfSampler(len(molecules), alpha=1.4, rng=rng)
    compounds = [molecules[sampler.sample()] for _ in range(40)]

    total_plain = 0.0
    total_cached = 0.0
    for compound in compounds:
        plain = execute_query(method, compound, query_mode="supergraph")
        cached = cache.query(compound)
        assert plain.answer_ids == cached.answer_ids
        total_plain += plain.total_time_s
        total_cached += cached.total_time_s

    stats = cache.runtime_statistics
    print(f"supergraph queries     : {len(compounds)}")
    print(f"fragments per answer   : "
          f"{sum(len(r.answer_ids) for r in cache.results()) / len(compounds):.1f} on average")
    print(f"cache hits             : {stats.cache_hits} (exact: {stats.exact_hits})")
    print(f"plain vs cached time   : {total_plain * 1000:.1f} ms -> {total_cached * 1000:.1f} ms "
          f"({total_plain / max(1e-9, total_cached):.2f}x)")


if __name__ == "__main__":
    main()
