#!/usr/bin/env python3
"""Molecule substructure search with an FTV method behind GraphCache.

Scenario (the paper's §1 motivation): a chemist explores a molecule dataset
with substructure queries that grow and shrink as the exploration narrows —
small functional groups first, then larger scaffolds containing them.  The
dataset is indexed with GraphGrepSX (an FTV method); GraphCache sits in front
and exploits the subgraph/supergraph relationships between successive queries.

The example also compares the cache replacement policies on this workload,
mirroring Figure 4 of the paper.

Run with::

    python examples/molecule_search.py
"""

from __future__ import annotations

from repro import GraphCache, GraphCacheConfig
from repro.bench import aggregate_baseline, aggregate_cached, speedup
from repro.ftv import GraphGrepSX
from repro.graphs.generators import aids_like
from repro.methods import execute_query
from repro.workloads import generate_type_a


def main() -> None:
    dataset = aids_like(scale=0.6, seed=11)
    print(f"dataset: {dataset.name} with {len(dataset)} molecule-like graphs")

    print("building GraphGrepSX index (paths up to length 4)...")
    method = GraphGrepSX(dataset, max_path_length=4)
    print(f"  index size ≈ {method.index_size_bytes() / 1024:.1f} KiB, "
          f"built in {method.build_time_s:.2f}s")

    # An exploratory session: Zipf-skewed source molecules and start atoms.
    workload = generate_type_a(
        dataset, "ZZ", 120, query_sizes=(4, 8, 12, 16), alpha=1.4, seed=3
    )
    # As in the paper, one window of queries warms the cache before measuring.
    warmup = 10
    baseline = [execute_query(method, query) for query in workload]
    baseline_aggregate = aggregate_baseline(baseline[warmup:])
    print(f"\nplain GGSX: {baseline_aggregate.avg_time_s * 1000:.2f} ms/query, "
          f"{baseline_aggregate.avg_subiso_tests:.1f} sub-iso tests/query")

    print("\nGraphCache over GGSX, per replacement policy:")
    print(f"{'policy':>8} | {'ms/query':>9} | {'tests/query':>11} | "
          f"{'time speedup':>12} | {'hit rate':>8}")
    for policy in ("lru", "pop", "pin", "pinc", "hd"):
        cache = GraphCache(
            method,
            GraphCacheConfig(cache_capacity=25, window_size=10, replacement_policy=policy),
        )
        results = [cache.query(query) for query in workload]
        for execution, result in zip(baseline, results, strict=True):
            assert execution.answer_ids == result.answer_ids
        cached_aggregate = aggregate_cached(results[warmup:])
        report = speedup(baseline_aggregate, cached_aggregate)
        print(f"{policy:>8} | {cached_aggregate.avg_time_s * 1000:9.2f} | "
              f"{cached_aggregate.avg_subiso_tests:11.1f} | "
              f"{report.time_speedup:12.2f} | {cached_aggregate.cache_hit_rate:8.2f}")

    print("\nTakeaway: the GC-exclusive policies (PIN/PINC) and the hybrid HD "
          "policy keep the most useful queries cached (paper, Figure 4).")


if __name__ == "__main__":
    main()
