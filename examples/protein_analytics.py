#!/usr/bin/env python3
"""Dense protein-contact-map analytics: cache pollution and admission control.

Scenario (§6.2 / Figure 9 of the paper): on dense graph datasets (protein
contact maps), most queries are cheap but a few are brutally expensive.
Without admission control the cache fills with cheap queries ("cache
pollution") and the expensive ones — which dominate total processing time —
see no benefit.  The expensiveness-based admission filter fixes that.

The workload mixes queries with and without answers (Type B, 20 % no-answer),
served by Grapes with 6 simulated verification threads, as in the paper.

Run with::

    python examples/protein_analytics.py
"""

from __future__ import annotations

from repro import GraphCache, GraphCacheConfig
from repro.bench import aggregate_baseline, aggregate_cached, speedup
from repro.ftv import Grapes
from repro.graphs.generators import pcm_like
from repro.methods import execute_query
from repro.workloads import QueryPools, TypeBWorkloadGenerator


def run_with(method, workload, admission_control: bool):
    config = GraphCacheConfig(
        cache_capacity=25,
        window_size=10,
        replacement_policy="hd",
        admission_control=admission_control,
        admission_expensive_fraction=0.25,
    )
    cache = GraphCache(method, config)
    results = [cache.query(query) for query in workload]
    return cache, results


def main() -> None:
    dataset = pcm_like(scale=0.5, seed=13)
    stats = dataset.statistics()
    print(f"dataset: {dataset.name}, {stats.graph_count} graphs, "
          f"avg degree {stats.mean_degree:.1f} (dense)")

    print("building Grapes index (6 simulated verification threads)...")
    method = Grapes(dataset, max_path_length=3, threads=6)

    print("building Type B query pools (20% no-answer queries)...")
    pools = QueryPools(
        dataset, query_sizes=(12, 16, 20), answer_pool_size=40,
        no_answer_pool_size=12, seed=5,
    )
    workload = TypeBWorkloadGenerator(pools, no_answer_probability=0.2, seed=9).generate(
        70, dataset_name=dataset.name
    )

    baseline = [execute_query(method, query) for query in workload]
    baseline_aggregate = aggregate_baseline(baseline)
    print(f"\nplain {method.name}: {baseline_aggregate.avg_time_s * 1000:.2f} ms/query")

    for admission in (False, True):
        label = "C + AC (admission control)" if admission else "C (no admission control)"
        cache, results = run_with(method, workload, admission)
        for execution, result in zip(baseline, results, strict=True):
            assert execution.answer_ids == result.answer_ids
        report = speedup(baseline_aggregate, aggregate_cached(results))
        threshold = cache.window_manager.admission.threshold
        print(f"\n{label}")
        print(f"  query-time speedup : {report.time_speedup:.2f}x")
        print(f"  sub-iso speedup    : {report.subiso_speedup:.2f}x")
        print(f"  exact-match hits   : {cache.runtime_statistics.exact_hits}")
        print(f"  empty shortcuts    : {cache.runtime_statistics.empty_shortcuts}")
        if admission:
            print(f"  calibrated expensiveness threshold: {threshold:.2f}")

    print("\nTakeaway: admission control keeps the expensive queries cached, "
          "raising the time speedup even when the sub-iso-count speedup drops "
          "(paper, Figure 9).")


if __name__ == "__main__":
    main()
