#!/usr/bin/env python3
"""Quickstart: put GraphCache in front of a subgraph-query method.

This example builds a small molecule-like dataset, wraps a plain subgraph-
isomorphism method (VF2+) with GraphCache, runs a skewed query workload twice
— once without and once with the cache — and prints the speedup, exactly the
comparison the paper reports.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import GraphCache, GraphCacheConfig
from repro.graphs.generators import aids_like
from repro.methods import SIMethod, execute_query
from repro.workloads import generate_type_a


def main() -> None:
    # 1. A dataset of labelled graphs (stand-in for the AIDS antiviral dataset).
    dataset = aids_like(scale=0.25, seed=7)
    print(f"dataset: {dataset.name} with {len(dataset)} graphs")

    # 2. The query-processing method GraphCache will expedite ("Method M").
    method = SIMethod(dataset, matcher="vf2plus")

    # 3. A skewed workload: popular queries repeat and relate to each other.
    workload = generate_type_a(dataset, "ZZ", 80, query_sizes=(4, 8, 12), seed=1)

    # 4. Baseline: run every query through the plain method.
    baseline = [execute_query(method, query) for query in workload]
    baseline_time = sum(execution.total_time_s for execution in baseline)
    baseline_tests = sum(execution.subiso_tests for execution in baseline)

    # 5. The same workload through GraphCache (paper defaults, scaled down).
    cache = GraphCache(method, GraphCacheConfig(cache_capacity=25, window_size=10))
    cached = [cache.query(query) for query in workload]
    cached_time = sum(result.total_time_s for result in cached)
    cached_tests = sum(result.subiso_tests for result in cached)

    # 6. Answers are identical — the cache never changes results.
    for execution, result in zip(baseline, cached, strict=True):
        assert execution.answer_ids == result.answer_ids

    stats = cache.runtime_statistics
    print(f"queries executed      : {len(workload)}")
    print(f"cache hits            : {stats.cache_hits} "
          f"(exact: {stats.exact_hits}, empty-shortcut: {stats.empty_shortcuts})")
    print(f"sub-iso tests         : {baseline_tests} -> {cached_tests} "
          f"({baseline_tests / max(1, cached_tests):.2f}x fewer)")
    print(f"total query time      : {baseline_time * 1000:.1f} ms -> {cached_time * 1000:.1f} ms "
          f"({baseline_time / max(1e-9, cached_time):.2f}x speedup)")
    print(f"cache space           : {cache.cache_size_bytes() / 1024:.1f} KiB "
          f"for {len(cache)} cached queries")


if __name__ == "__main__":
    main()
